package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"trustseq/internal/model"
)

// FaultPlan composes the deterministic fault injectors the network
// applies on top of its baseline latency model. The zero value (and a
// nil plan) injects nothing. Every decision the plan triggers is drawn
// from the network's seeded RNG in event order, so a faulted run is as
// reproducible as a clean one: same seed, same plan, same trace.
//
// Faults respect the paper's scoping: the value-transfer layer is
// reliable (transfers and recall demands are never lost, only delayed),
// while control-plane notifications may be lost, duplicated or delayed
// arbitrarily — exactly the failure the Section 5 deadline machinery
// and the notify retry layer must absorb.
type FaultPlan struct {
	// DupRate is the probability in [0,1) that a notification is
	// delivered twice, each copy with its own latency.
	DupRate float64

	// ReorderRate is the probability in [0,1) that a message picks up
	// extra latency in [1, ReorderBound], reordering it against its
	// neighbors while keeping delivery bounded.
	ReorderRate  float64
	ReorderBound Time

	// SpikeRate is the probability in [0,1) of a latency spike of
	// SpikeTicks — long enough to push a delivery past a deadline.
	SpikeRate  float64
	SpikeTicks Time

	// Partitions cut individual links for a window of virtual time.
	// While a link is cut, notifications on it are lost; transfers and
	// recall demands are deferred until the partition heals.
	Partitions []Partition

	// Crashes schedule crash-restarts of trusted intermediaries: at the
	// crash tick the node loses its volatile state, and on restart it
	// restores from its durable escrow log and resumes — unwinding with
	// compensations if its deadline expired while it was down.
	Crashes []CrashEvent
}

// Partition cuts the link between two parties (both directions) from
// tick From until tick Until, when it heals.
type Partition struct {
	A, B model.PartyID
	From Time
	// Until is the heal tick (exclusive end of the window).
	Until Time
}

// covers reports whether the partition cuts the from→to link at time t.
func (pt Partition) covers(t Time, from, to model.PartyID) bool {
	if t < pt.From || t >= pt.Until {
		return false
	}
	return (pt.A == from && pt.B == to) || (pt.A == to && pt.B == from)
}

// CrashEvent schedules one crash-restart of a trusted node: it crashes
// at At (losing volatile state) and restarts at At+Downtime (restoring
// from its durable log). Messages that would be processed while the
// node is down are lost (notifications and timers) or deferred to the
// restart (transfers and recall demands).
type CrashEvent struct {
	Node     model.PartyID
	At       Time
	Downtime Time
}

// Enabled reports whether the plan injects anything.
func (f *FaultPlan) Enabled() bool {
	if f == nil {
		return false
	}
	return f.DupRate > 0 || f.ReorderRate > 0 || f.SpikeRate > 0 ||
		len(f.Partitions) > 0 || len(f.Crashes) > 0
}

// Validate checks the plan against a problem: rates in [0,1), positive
// windows, partition endpoints that exist, and crashes that target
// trusted nodes with non-overlapping windows per node.
func (f *FaultPlan) Validate(p *model.Problem) error {
	if f == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"DupRate", f.DupRate}, {"ReorderRate", f.ReorderRate}, {"SpikeRate", f.SpikeRate}} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("sim: fault %s = %v outside [0,1)", r.name, r.v)
		}
	}
	if f.ReorderRate > 0 && f.ReorderBound <= 0 {
		return fmt.Errorf("sim: ReorderRate set without a positive ReorderBound")
	}
	if f.SpikeRate > 0 && f.SpikeTicks <= 0 {
		return fmt.Errorf("sim: SpikeRate set without positive SpikeTicks")
	}
	parties := make(map[model.PartyID]bool, len(p.Parties))
	trusted := make(map[model.PartyID]bool)
	for _, pa := range p.Parties {
		parties[pa.ID] = true
		if pa.IsTrusted() {
			trusted[pa.ID] = true
		}
	}
	for i, pt := range f.Partitions {
		if pt.A == pt.B {
			return fmt.Errorf("sim: partition %d cuts a self-link (%s)", i, pt.A)
		}
		if !parties[pt.A] || !parties[pt.B] {
			return fmt.Errorf("sim: partition %d names unknown party (%s, %s)", i, pt.A, pt.B)
		}
		if pt.From < 0 || pt.Until <= pt.From {
			return fmt.Errorf("sim: partition %d window [%d, %d) is empty", i, pt.From, pt.Until)
		}
	}
	windows := make(map[model.PartyID][]CrashEvent)
	for i, ev := range f.Crashes {
		if !trusted[ev.Node] {
			return fmt.Errorf("sim: crash %d targets %s, which is not a trusted node", i, ev.Node)
		}
		if ev.At < 0 || ev.Downtime <= 0 {
			return fmt.Errorf("sim: crash %d of %s has empty window (at %d, downtime %d)", i, ev.Node, ev.At, ev.Downtime)
		}
		windows[ev.Node] = append(windows[ev.Node], ev)
	}
	for node, evs := range windows {
		sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		for i := 1; i < len(evs); i++ {
			if evs[i].At < evs[i-1].At+evs[i-1].Downtime {
				return fmt.Errorf("sim: overlapping crash windows for %s", node)
			}
		}
	}
	return nil
}

// FaultMenu selects which fault families a sampled plan may draw from.
// Drop covers the pre-existing notify-loss injector (Options.
// NotifyDropRate); the rest map to FaultPlan fields.
type FaultMenu struct {
	Dup, Reorder, Spike, Partition, Crash, Drop bool
}

// AllFaults enables every family.
func AllFaults() FaultMenu {
	return FaultMenu{Dup: true, Reorder: true, Spike: true, Partition: true, Crash: true, Drop: true}
}

// Any reports whether at least one family is enabled.
func (m FaultMenu) Any() bool {
	return m.Dup || m.Reorder || m.Spike || m.Partition || m.Crash || m.Drop
}

// String renders the enabled families in flag syntax.
func (m FaultMenu) String() string {
	var on []string
	for _, f := range []struct {
		name string
		set  bool
	}{{"dup", m.Dup}, {"reorder", m.Reorder}, {"spike", m.Spike},
		{"partition", m.Partition}, {"crash", m.Crash}, {"drop", m.Drop}} {
		if f.set {
			on = append(on, f.name)
		}
	}
	if len(on) == 0 {
		return "none"
	}
	if len(on) == 6 {
		return "all"
	}
	return strings.Join(on, ",")
}

// ParseFaultMenu parses a -faults flag value: "all", "none", or a
// comma-separated subset of dup, reorder, spike, partition, crash, drop.
func ParseFaultMenu(spec string) (FaultMenu, error) {
	var m FaultMenu
	switch spec {
	case "", "none":
		return m, nil
	case "all":
		return AllFaults(), nil
	}
	for _, part := range strings.Split(spec, ",") {
		switch strings.TrimSpace(part) {
		case "dup":
			m.Dup = true
		case "reorder":
			m.Reorder = true
		case "spike":
			m.Spike = true
		case "partition":
			m.Partition = true
		case "crash":
			m.Crash = true
		case "drop":
			m.Drop = true
		case "":
		default:
			return m, fmt.Errorf("sim: unknown fault family %q (want dup, reorder, spike, partition, crash, drop, all or none)", strings.TrimSpace(part))
		}
	}
	return m, nil
}

// SampleFaultPlan draws a bounded random fault plan for a problem from
// the enabled families. The plan is a pure function of the RNG stream,
// so a caller that seeds rng deterministically gets a reproducible
// plan. Deadline scales the time-domain faults (spikes, partition
// windows, crash windows) so they actually straddle the escrow expiry.
func SampleFaultPlan(rng *rand.Rand, p *model.Problem, menu FaultMenu, deadline Time) *FaultPlan {
	if deadline < 8 {
		deadline = 8
	}
	f := &FaultPlan{}
	if menu.Dup {
		f.DupRate = 0.1 + 0.35*rng.Float64()
	}
	if menu.Reorder {
		f.ReorderRate = 0.2 + 0.4*rng.Float64()
		f.ReorderBound = 2 + Time(rng.Int63n(10))
	}
	if menu.Spike {
		f.SpikeRate = 0.05 + 0.1*rng.Float64()
		f.SpikeTicks = deadline/4 + Time(rng.Int63n(int64(deadline/2)+1))
	}
	if menu.Partition && len(p.Parties) >= 2 {
		for k := rng.Intn(2) + 1; k > 0; k-- {
			i := rng.Intn(len(p.Parties))
			j := rng.Intn(len(p.Parties))
			if i == j {
				continue
			}
			start := Time(rng.Int63n(int64(deadline)))
			f.Partitions = append(f.Partitions, Partition{
				A:     p.Parties[i].ID,
				B:     p.Parties[j].ID,
				From:  start,
				Until: start + 1 + Time(rng.Int63n(int64(deadline/2)+1)),
			})
		}
	}
	if menu.Crash {
		var trusted []model.PartyID
		for _, pa := range p.Parties {
			if pa.IsTrusted() {
				trusted = append(trusted, pa.ID)
			}
		}
		if len(trusted) > 0 {
			lastEnd := make(map[model.PartyID]Time)
			for k := rng.Intn(2) + 1; k > 0; k-- {
				node := trusted[rng.Intn(len(trusted))]
				at := 1 + Time(rng.Int63n(int64(deadline)))
				down := 1 + Time(rng.Int63n(int64(deadline/3)+1))
				if at < lastEnd[node] {
					at = lastEnd[node] + 1
				}
				lastEnd[node] = at + down
				f.Crashes = append(f.Crashes, CrashEvent{Node: node, At: at, Downtime: down})
			}
		}
	}
	return f
}

// ChaosOptions assembles a full chaos run configuration: a sampled
// fault plan plus jitter, drop rate and the notify retry layer, all
// derived from rng. Deadline ≤ 0 samples one in [40, 200) so some runs
// complete and others are forced through the unwind. Callers add
// Defectors and Obs on top.
func ChaosOptions(rng *rand.Rand, p *model.Problem, menu FaultMenu, seed int64, deadline Time) Options {
	if deadline <= 0 {
		deadline = 40 + Time(rng.Int63n(160))
	}
	opts := Options{
		Seed:          seed,
		Jitter:        2 + Time(rng.Int63n(6)),
		Deadline:      deadline,
		Faults:        SampleFaultPlan(rng, p, menu, deadline),
		NotifyRetries: 1 + rng.Intn(3),
	}
	if menu.Drop {
		opts.NotifyDropRate = 0.6 * rng.Float64()
	}
	return opts
}

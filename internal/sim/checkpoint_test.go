package sim

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"trustseq/internal/core"
)

// checkpointedRun executes plan twice: once uninterrupted, once with a
// checkpoint written at tick `at` and resumed via RestoreRun. It
// returns both results plus the checkpoint path.
func checkpointedRun(t *testing.T, pl *core.Plan, opts Options, at Time) (full, restored *Result, path string) {
	t.Helper()
	full, err := Run(pl, opts)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	path = filepath.Join(t.TempDir(), "run.ckpt")
	opts.Checkpoint = &CheckpointSpec{Path: path, At: at}
	if _, err := Run(pl, opts); err != nil {
		t.Fatalf("checkpointing run: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	opts.Checkpoint = nil
	restored, err = RestoreRun(pl, opts, path)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return full, restored, path
}

// requireSameOutcome asserts the restored run is indistinguishable from
// the uninterrupted one: byte-identical trace, identical fault stats,
// and identical final balances (via the deterministic summary).
func requireSameOutcome(t *testing.T, full, restored *Result) {
	t.Helper()
	if a, b := RenderTrace(full.Trace), RenderTrace(restored.Trace); a != b {
		t.Fatalf("trace diverged after restore:\n--- full ---\n%s\n--- restored ---\n%s", a, b)
	}
	if full.FaultStats != restored.FaultStats {
		t.Fatalf("fault stats diverged: %+v vs %+v", full.FaultStats, restored.FaultStats)
	}
	if a, b := full.Summary(), restored.Summary(); a != b {
		t.Fatalf("summary diverged:\n--- full ---\n%s\n--- restored ---\n%s", a, b)
	}
	if full.DroppedNotifies != restored.DroppedNotifies {
		t.Fatalf("dropped notifies diverged: %d vs %d", full.DroppedNotifies, restored.DroppedNotifies)
	}
}

// A checkpoint written mid-chaos and restored must replay the remaining
// run tick-for-tick across every generator family in the corpus.
func TestCheckpointRestoreIdenticalAcrossCorpus(t *testing.T) {
	t.Parallel()
	for pi, pl := range chaosCorpus(t) {
		for s := 0; s < 2; s++ {
			seed := int64(pi)*7919 + int64(s)
			rng := rand.New(rand.NewSource(seed))
			opts := ChaosOptions(rng, pl.Problem, AllFaults(), seed, 0)
			base, err := Run(pl, opts)
			if err != nil {
				t.Fatalf("%s seed %d: %v", pl.Problem.Name, seed, err)
			}
			for _, at := range []Time{1, base.Duration / 2, base.Duration} {
				full, restored, _ := checkpointedRun(t, pl, opts, at)
				requireSameOutcome(t, full, restored)
			}
		}
	}
}

// Sweeping the checkpoint tick across the whole run catches positional
// bugs: mid-batch events, in-flight transfers, down nodes, pending
// crash windows.
func TestCheckpointAtManyTicksIdentical(t *testing.T) {
	t.Parallel()
	pl := chaosCorpus(t)[0]
	seed := int64(42)
	rng := rand.New(rand.NewSource(seed))
	opts := ChaosOptions(rng, pl.Problem, AllFaults(), seed, 0)
	base, err := Run(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	step := base.Duration / 16
	if step < 1 {
		step = 1
	}
	for at := Time(0); at <= base.Duration; at += step {
		full, restored, _ := checkpointedRun(t, pl, opts, at)
		requireSameOutcome(t, full, restored)
	}
}

// writeChaosCheckpoint produces one real checkpoint file to corrupt.
func writeChaosCheckpoint(t *testing.T) (*core.Plan, Options, string) {
	t.Helper()
	pl := chaosCorpus(t)[0]
	seed := int64(99)
	rng := rand.New(rand.NewSource(seed))
	opts := ChaosOptions(rng, pl.Problem, AllFaults(), seed, 0)
	base, err := Run(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chaos.ckpt")
	opts.Checkpoint = &CheckpointSpec{Path: path, At: base.Duration / 2}
	if _, err := Run(pl, opts); err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = nil
	return pl, opts, path
}

// Truncated checkpoints must fail closed with the typed corruption
// error — never a partial restore — at every truncation point.
func TestCheckpointTruncatedFailsClosed(t *testing.T) {
	t.Parallel()
	pl, opts, path := writeChaosCheckpoint(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.ckpt")
	step := len(data) / 64
	if step < 1 {
		step = 1
	}
	for n := 0; n < len(data); n += step {
		if err := os.WriteFile(cut, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreRun(pl, opts, cut); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("truncation at %d/%d bytes: got %v, want ErrCheckpointCorrupt", n, len(data), err)
		}
	}
}

// Any flipped bit must trip the CRC and fail closed.
func TestCheckpointBitFlipFailsClosed(t *testing.T) {
	t.Parallel()
	pl, opts, path := writeChaosCheckpoint(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(t.TempDir(), "flip.ckpt")
	step := len(data) / 48
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(data); i += step {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if err := os.WriteFile(flipped, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreRun(pl, opts, flipped); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("bit flip at byte %d: got %v, want ErrCheckpointCorrupt", i, err)
		}
	}
}

// A checkpoint restored against different options or a different plan
// must be rejected with the typed mismatch error.
func TestCheckpointMismatchRejected(t *testing.T) {
	t.Parallel()
	pl, opts, path := writeChaosCheckpoint(t)

	wrongSeed := opts
	wrongSeed.Seed++
	if _, err := RestoreRun(pl, wrongSeed, path); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("wrong seed: got %v, want ErrCheckpointMismatch", err)
	}

	wrongDeadline := opts
	wrongDeadline.Deadline += 7
	if _, err := RestoreRun(pl, wrongDeadline, path); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("wrong deadline: got %v, want ErrCheckpointMismatch", err)
	}

	// A different plan needs options valid for its own problem; the plan
	// fingerprint still rejects the restore.
	otherPlan := chaosCorpus(t)[1]
	otherOpts := opts
	otherOpts.Faults = nil
	if _, err := RestoreRun(otherPlan, otherOpts, path); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("wrong plan: got %v, want ErrCheckpointMismatch", err)
	}
}

// A missing checkpoint file surfaces the filesystem error untouched.
func TestCheckpointMissingFile(t *testing.T) {
	t.Parallel()
	pl := chaosCorpus(t)[0]
	_, err := RestoreRun(pl, Options{Seed: 1}, filepath.Join(t.TempDir(), "nope.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("got %v, want fs not-exist error", err)
	}
}

package sim

import (
	"fmt"
	"sort"

	"trustseq/internal/model"
)

// TrustsDefectorPersona reports whether victim relies on a trusted
// component played by the defector — the accepted risk a direct-trust
// declaration carries (Section 2.5): losses to a directly trusted
// defector are outside the protection claim.
func TrustsDefectorPersona(p *model.Problem, victim, defector model.PartyID) bool {
	for _, e := range p.Exchanges {
		if e.Principal != victim {
			continue
		}
		if q, ok := p.PersonaOf(e.Trusted); ok && q == defector {
			return true
		}
	}
	return false
}

// ChaosViolations audits a finished run against the safety contract the
// chaos layer must never break, returning one description per violation
// (empty means safe). The contract, per the paper's protection claim
// restricted to what faults may legitimately cost:
//
//   - Every honest principal keeps per-exchange asset integrity, with
//     two exceptions: an indemnity OFFERER may forfeit its collateral
//     under deadline pressure, but only with the payout observable in
//     the final state; and a party that declared direct trust in a
//     defector accepted that loss.
//   - Every honest trusted component ends neutral — holding nothing —
//     even across crash-restarts (personas of defectors are corrupt and
//     exempt).
//   - The trace is a complete audit log: replaying its transfers alone
//     reproduces the live balances exactly, fault events included.
func ChaosViolations(res *Result, defectors map[model.PartyID]int) []string {
	p := res.Problem
	var out []string

	offerers := make(map[model.PartyID]bool)
	var payouts []model.Action
	for _, off := range p.Indemnities {
		offerers[off.By] = true
		amount := off.Amount
		if amount == 0 {
			amount = model.RequiredIndemnity(p, off.Covers)
		}
		payouts = append(payouts, model.Pay(off.Via, p.Exchanges[off.Covers].Principal, amount))
	}
	forfeited := false
	for _, payout := range payouts {
		if res.State.Has(payout) {
			forfeited = true
		}
	}
	trustsADefector := func(victim model.PartyID) bool {
		for d := range defectors {
			if TrustsDefectorPersona(p, victim, d) {
				return true
			}
		}
		return false
	}

	for _, pa := range p.Parties {
		if pa.IsTrusted() {
			honest := true
			if q, ok := p.PersonaOf(pa.ID); ok {
				if _, defects := defectors[q]; defects {
					honest = false
				}
			}
			if honest && !res.TrustedNeutral(pa.ID) {
				out = append(out, fmt.Sprintf("trusted %s not neutral: %v", pa.ID, res.Balances[pa.ID]))
			}
			continue
		}
		if _, defects := defectors[pa.ID]; defects {
			continue
		}
		if res.AssetsSafeFor(pa.ID) || trustsADefector(pa.ID) {
			continue
		}
		if offerers[pa.ID] && forfeited {
			continue // collateral forfeit with an observable payout
		}
		out = append(out, fmt.Sprintf("honest %s lost assets", pa.ID))
	}

	replayed, err := res.ReplayBalances()
	if err != nil {
		out = append(out, fmt.Sprintf("trace replay: %v", err))
		return out
	}
	ids := make([]string, 0, len(replayed))
	for id := range replayed {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		pid := model.PartyID(id)
		if !replayed[pid].Equal(res.Balances[pid]) {
			out = append(out, fmt.Sprintf("replayed balance of %s diverges: live %v, replay %v",
				pid, res.Balances[pid], replayed[pid]))
		}
	}
	return out
}

package sim

import (
	"fmt"
	"testing"
)

// BenchmarkSchedulerTimers measures the scheduling cost that dominates
// a large-population run: a standing mass of pending deadline timers —
// one per principal, far in the future, and almost never firing — with
// a churn of short-latency message events popping and re-arming on top
// of it. The heap pays O(log n) sift-up and sift-down against the full
// standing mass on every operation (and every sift step copies a
// ~100-byte Message); the wheel parks the deadlines in high-level
// buckets where they cost nothing until their window approaches, so
// the message churn runs at level-0 cost regardless of how many
// principals are waiting. This is the gap that makes 10^5–10^6
// principals feasible.
//
// The pending=0 variant isolates the churn with no standing timers —
// the two queues are comparable there, which localises the speedup to
// the standing mass rather than to per-operation constants.
func BenchmarkSchedulerTimers(b *testing.B) {
	// Message-latency-shaped delays: small, co-prime-ish spread so the
	// churn events neither collapse into one tick nor leave level 0.
	churn := []Time{1, 2, 3, 5, 8, 13, 21, 34, 55}
	// Deadlines sit deep in the wheel's span, spread over a thousand
	// ticks so the heap isn't handed a degenerate all-equal suffix.
	const deadlineBase Time = 10_000_000
	for _, pending := range []int{0, 1000, 100000} {
		for _, kind := range []struct {
			name string
			k    SchedulerKind
		}{{"wheel", SchedulerWheel}, {"heap", SchedulerHeap}} {
			b.Run(fmt.Sprintf("queue=%s/pending=%d", kind.name, pending), func(b *testing.B) {
				q := newQueue(kind.k)
				seq := 0
				for i := 0; i < pending; i++ {
					q.push(Message{At: deadlineBase + Time(i%1000), Kind: MsgTimer, seq: seq})
					seq++
				}
				// The in-flight message population: enough to keep a
				// few ticks occupied, far fewer than the timer mass.
				for i := 0; i < 64; i++ {
					q.push(Message{At: 1 + churn[i%len(churn)], Kind: MsgTimer, seq: seq})
					seq++
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, ok := q.pop()
					if !ok {
						b.Fatal("queue drained")
					}
					if m.At >= deadlineBase {
						b.Fatal("churn reached the deadline horizon; raise deadlineBase")
					}
					q.push(Message{At: m.At + churn[i%len(churn)], Kind: MsgTimer, seq: seq})
					seq++
				}
			})
		}
	}
}

package sim

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"

	"trustseq/internal/model"
	"trustseq/internal/obs"
	"trustseq/internal/slab"
)

// Time is virtual time in ticks.
type Time int64

// MsgKind classifies simulator messages.
type MsgKind int

// Message kinds. Transfers move assets through the ledger; notifies move
// information; timers are self-scheduled wakeups. Crash and restart are
// fault events injected by a FaultPlan: they appear in the trace (the
// audit log records when a trusted node was down) but move nothing, so
// replay skips them.
const (
	MsgTransfer MsgKind = iota + 1
	MsgNotify
	MsgTimer
	MsgCrash
	MsgRestart
)

// String names the kind.
func (k MsgKind) String() string {
	switch k {
	case MsgTransfer:
		return "transfer"
	case MsgNotify:
		return "notify"
	case MsgTimer:
		return "timer"
	case MsgCrash:
		return "crash"
	case MsgRestart:
		return "restart"
	default:
		return fmt.Sprintf("msg(%d)", int(k))
	}
}

// Message is one network event.
type Message struct {
	At       Time
	From, To model.PartyID
	Kind     MsgKind
	// Action is the model action a transfer or notify performs.
	Action model.Action
	// Tag carries timer identification (e.g. "deadline:3").
	Tag string

	seq int // FIFO tiebreaker for equal delivery times
}

// String renders the message.
func (m Message) String() string {
	switch m.Kind {
	case MsgTimer:
		return fmt.Sprintf("@%d timer %s at %s", m.At, m.Tag, m.To)
	case MsgCrash:
		return fmt.Sprintf("@%d crash %s", m.At, m.To)
	case MsgRestart:
		return fmt.Sprintf("@%d restart %s", m.At, m.To)
	case MsgNotify:
		return fmt.Sprintf("@%d %v", m.At, m.Action)
	default:
		return fmt.Sprintf("@%d %v", m.At, m.Action)
	}
}

// FaultStats counts what a run's fault injection actually did — the
// property tests use it to prove the chaos is real, and Result carries
// it so CLIs can report it.
type FaultStats struct {
	// DupNotifies counts duplicated notification copies scheduled.
	DupNotifies int
	// Reorders counts messages given extra bounded latency.
	Reorders int
	// Spikes counts latency spikes applied.
	Spikes int
	// PartitionDrops counts notifications lost to a cut link.
	PartitionDrops int
	// CrashDrops counts notifications and armed timers lost because the
	// target was down.
	CrashDrops int
	// Deferred counts transfers (and recall demands) held back by a
	// partition or a down node and delivered after heal/restart.
	Deferred int
	// RetriesSent counts extra notification copies from the retry layer.
	RetriesSent int
	// Crashes and Restarts count fault events processed.
	Crashes  int
	Restarts int
}

// Node is a simulated participant.
type Node interface {
	ID() model.PartyID
	// Init runs before the first event; nodes schedule their opening
	// moves here.
	Init(ctx *Context)
	// OnMessage handles one delivered message.
	OnMessage(ctx *Context, m Message)
}

// Recoverable is a node that survives scheduled crash-restarts: Crash
// wipes its volatile state (the durable log survives), Restore rebuilds
// from the log and runs the recovery protocol — re-arming timers and
// executing any compensations the outage made due.
type Recoverable interface {
	Node
	Crash()
	Restore(ctx *Context)
}

// Network is the deterministic discrete-event simulator core.
//
// Node state is sharded by principal: party IDs are interned into dense
// slots, and the node table, down flags, and crash bookkeeping are flat
// slabs indexed by slot — no per-principal map entries, so memory per
// principal stays flat into the 10^6 range. The event queue is the
// hierarchical timing wheel (see wheel.go); delivery reuses one scratch
// Context, so scheduling plus delivering a message allocates nothing at
// steady state.
type Network struct {
	parties   *slab.Index[model.PartyID]
	nodes     []Node // by party slot
	q         eventQueue
	now       Time
	seq       int
	processed int
	rng       *rand.Rand
	rsrc      *countingSource
	baseLat   Time
	jitter    Time
	trace     []Message
	maxMsgs   int
	dropRate  float64
	dropped   int

	// Fault-injection state: the plan, the per-slot down flags with the
	// pending restart ticks, and the realized-fault counters.
	faults    *FaultPlan
	retries   int
	retryBase Time
	down      []bool   // by party slot
	restartAt []Time   // by party slot
	crashEnds [][]Time // by party slot, ascending
	fstats    FaultStats

	// ctx is the scratch delivery context, reused across callbacks.
	// It is valid only for the duration of one callback; no node
	// retains it.
	ctx Context

	// sendHook runs when a transfer is sent (debit the sender);
	// deliverHook runs when it is delivered (credit the receiver). The
	// runner wires these to the ledger.
	sendHook    func(Message) error
	deliverHook func(Message) error

	// onEvent, when set, observes every popped event after virtual time
	// advances and before dispatch. The checkpoint writer hangs off it.
	onEvent func(Message) error

	// tel receives one trace event per delivered message (the
	// replayable audit log) plus drop events; nil disables.
	tel *obs.Telemetry
}

// setHooks installs the asset-movement callbacks.
func (n *Network) setHooks(onSend, onDeliver func(Message) error) {
	n.sendHook = onSend
	n.deliverHook = onDeliver
}

// Config tunes the network.
type Config struct {
	Seed        int64
	BaseLatency Time // per-message latency floor (default 1)
	Jitter      Time // uniform extra latency in [0, Jitter] (default 3)
	MaxMessages int  // runaway guard (default 100_000)
	// Scheduler selects the event queue. The zero value is the timing
	// wheel; SchedulerHeap selects the binary-heap oracle. The two are
	// observationally identical — the equivalence property test holds
	// traces byte-identical — so this is a benchmarking and testing
	// knob, never a semantics knob.
	Scheduler SchedulerKind
	// NotifyDropRate is the probability in [0,1) that a notification
	// (control-plane message) is lost. Transfers are never dropped: the
	// value-transfer layer is assumed reliable, exactly as the paper
	// scopes out payment-mechanism failures; loss of notifications is
	// the distributed-systems failure the deadline machinery must
	// absorb.
	NotifyDropRate float64
	// Faults composes the deterministic fault injectors (duplication,
	// reordering, spikes, partitions, crash-restarts). Nil injects
	// nothing beyond NotifyDropRate.
	Faults *FaultPlan
	// NotifyRetries re-sends every notification up to that many extra
	// times with exponentially backed-off, jittered delays (clamped to
	// 6). Receivers are idempotent, so retries change liveness under
	// faults, never the protocol outcome. 0 disables.
	NotifyRetries int
	// RetryBase is the first retry delay (default 8 ticks).
	RetryBase Time
	// Obs receives per-message trace events and network counters.
	// Telemetry is additive: it never alters scheduling, so a traced
	// run is tick-for-tick identical to an untraced one.
	Obs *obs.Telemetry
}

// countingSource wraps a rand.Source and counts Int63 draws so a
// checkpoint can record the RNG position and a restore can fast-forward
// to it. It deliberately does NOT implement rand.Source64: math/rand's
// Uint64 fallback makes two Int63 calls per Uint64, so hiding the
// Source64 fast path keeps the count exact — and every generator method
// the network uses (Int63n, Float64) is defined purely in terms of
// Int63, so the emitted stream is bit-identical to the unwrapped
// source's.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.n = 0
	s.src.Seed(seed)
}

// NewNetwork builds an empty network.
func NewNetwork(cfg Config) *Network {
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 1
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.MaxMessages <= 0 {
		cfg.MaxMessages = 100_000
	}
	if cfg.NotifyRetries < 0 {
		cfg.NotifyRetries = 0
	}
	if cfg.NotifyRetries > 6 {
		cfg.NotifyRetries = 6
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 8
	}
	src := &countingSource{src: rand.NewSource(cfg.Seed)}
	n := &Network{
		parties:   slab.NewIndex[model.PartyID](16),
		q:         newQueue(cfg.Scheduler),
		rng:       rand.New(src),
		rsrc:      src,
		baseLat:   cfg.BaseLatency,
		jitter:    cfg.Jitter,
		maxMsgs:   cfg.MaxMessages,
		dropRate:  cfg.NotifyDropRate,
		faults:    cfg.Faults,
		retries:   cfg.NotifyRetries,
		retryBase: cfg.RetryBase,
		tel:       cfg.Obs,
	}
	n.ctx = Context{net: n}
	return n
}

// slot interns a party ID, growing the per-slot slabs in lockstep.
func (n *Network) slot(id model.PartyID) int32 {
	p := n.parties.Intern(id)
	for int(p) >= len(n.nodes) {
		n.nodes = append(n.nodes, nil)
		n.down = append(n.down, false)
		n.restartAt = append(n.restartAt, 0)
		n.crashEnds = append(n.crashEnds, nil)
	}
	return p
}

// AddNode registers a node.
func (n *Network) AddNode(node Node) {
	n.nodes[n.slot(node.ID())] = node
}

// Now returns the current virtual time.
func (n *Network) Now() Time { return n.now }

func (n *Network) schedule(m Message) {
	m.seq = n.seq
	n.seq++
	n.q.push(m)
}

// reliable reports whether a message rides the reliable channel:
// transfers always (the paper scopes out payment-mechanism failures),
// and the trusted component's recall demand — the §2.5 unwind is an
// enforcement action, so its control message is carried with
// transfer-grade delivery (deferred by partitions and crashes, never
// lost). Everything else is a best-effort notification.
func reliable(m Message) bool {
	return m.Kind == MsgTransfer || strings.HasPrefix(m.Tag, "recall:")
}

// send schedules a message with network latency and fault injection,
// then layers the notify retry copies on top. Notifications may be
// lost; reliable messages never are.
func (n *Network) send(m Message) {
	n.sendAfter(m, 0)
	if m.Kind != MsgNotify || n.retries == 0 {
		return
	}
	delay := n.retryBase
	for i := 0; i < n.retries; i++ {
		jit := Time(0)
		if n.jitter > 0 {
			jit = Time(n.rng.Int63n(int64(n.jitter) + 1))
		}
		n.fstats.RetriesSent++
		if n.tel.Enabled() {
			n.tel.Reg().Counter("sim.notifies.retried").Inc()
		}
		n.sendAfter(m, delay+jit)
		delay *= 2
	}
}

// sendAfter schedules one copy of a message with `extra` latency on top
// of the network's base+jitter, running it through the fault injectors
// in a fixed order (drop, partition, reorder, spike, duplication) so
// the RNG stream — and therefore the schedule — is deterministic.
func (n *Network) sendAfter(m Message, extra Time) {
	if !reliable(m) && n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.dropped++
		if n.tel.Enabled() {
			n.tel.Reg().Counter("sim.notifies.dropped").Inc()
			n.tel.Trace().Event("sim.drop",
				obs.Int64("t", int64(n.now)),
				obs.Str("from", string(m.From)),
				obs.Str("to", string(m.To)))
		}
		return
	}
	lat := n.baseLat + extra
	if n.jitter > 0 {
		lat += Time(n.rng.Int63n(int64(n.jitter) + 1))
	}
	f := n.faults
	if f == nil {
		m.At = n.now + lat
		n.schedule(m)
		return
	}
	if heal, cut := n.partitioned(m.From, m.To); cut {
		if !reliable(m) {
			n.fstats.PartitionDrops++
			if n.tel.Enabled() {
				n.tel.Reg().Counter("sim.faults.partition_drops").Inc()
			}
			return
		}
		// Reliable traffic waits out the partition.
		n.fstats.Deferred++
		if n.tel.Enabled() {
			n.tel.Reg().Counter("sim.faults.deferred").Inc()
		}
		m.At = heal + lat
		n.schedule(m)
		return
	}
	if f.ReorderRate > 0 && n.rng.Float64() < f.ReorderRate {
		lat += 1 + Time(n.rng.Int63n(int64(f.ReorderBound)))
		n.fstats.Reorders++
	}
	if f.SpikeRate > 0 && n.rng.Float64() < f.SpikeRate {
		lat += f.SpikeTicks
		n.fstats.Spikes++
	}
	if m.Kind == MsgNotify && f.DupRate > 0 && n.rng.Float64() < f.DupRate {
		dupLat := n.baseLat
		if n.jitter > 0 {
			dupLat += Time(n.rng.Int63n(int64(n.jitter) + 1))
		}
		dup := m
		dup.At = n.now + dupLat
		n.fstats.DupNotifies++
		if n.tel.Enabled() {
			n.tel.Reg().Counter("sim.faults.dup_notifies").Inc()
		}
		n.schedule(dup)
	}
	m.At = n.now + lat
	n.schedule(m)
}

// partitioned reports whether the from→to link is cut right now, and if
// so when it heals (the latest heal tick across matching partitions).
func (n *Network) partitioned(from, to model.PartyID) (heal Time, cut bool) {
	if n.faults == nil {
		return 0, false
	}
	for _, pt := range n.faults.Partitions {
		if pt.covers(n.now, from, to) {
			cut = true
			if pt.Until > heal {
				heal = pt.Until
			}
		}
	}
	return heal, cut
}

// timer schedules a self-wakeup at an absolute time.
func (n *Network) timer(to model.PartyID, at Time, tag string) {
	n.schedule(Message{At: at, From: to, To: to, Kind: MsgTimer, Tag: tag})
}

// Run initializes every node, schedules the fault plan's crash events,
// and processes events to quiescence.
func (n *Network) Run() error {
	ids := make([]model.PartyID, 0, n.parties.Len())
	for p := int32(0); p < int32(n.parties.Len()); p++ {
		if n.nodes[p] != nil {
			ids = append(ids, n.parties.Key(p))
		}
	}
	// Deterministic init order.
	slices.Sort(ids)
	n.scheduleCrashes()
	for _, id := range ids {
		p, _ := n.parties.Lookup(id)
		n.ctx.self = id
		n.nodes[p].Init(&n.ctx)
	}
	return n.loop()
}

// loop processes queued events to quiescence. Both the fresh-run and
// the restored-from-checkpoint paths end up here.
func (n *Network) loop() error {
	for {
		more, err := n.step()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// step pops and delivers exactly one event, reporting false once the
// queue has drained. The steady-state alloc budget is enforced around
// this unit (see alloc_test.go).
func (n *Network) step() (bool, error) {
	m, ok := n.q.pop()
	if !ok {
		return false, nil
	}
	if m.At > n.now {
		n.now = m.At
	}
	n.processed++
	if n.processed > n.maxMsgs {
		return false, fmt.Errorf("sim: exceeded %d messages; likely livelock", n.maxMsgs)
	}
	if n.onEvent != nil {
		if err := n.onEvent(m); err != nil {
			return false, err
		}
	}
	p, ok := n.parties.Lookup(m.To)
	if !ok || n.nodes[p] == nil {
		return false, fmt.Errorf("sim: message to unknown node %s", m.To)
	}
	node := n.nodes[p]
	switch m.Kind {
	case MsgCrash:
		n.handleCrash(m, p, node)
		return true, nil
	case MsgRestart:
		n.handleRestart(m, p, node)
		return true, nil
	}
	if n.down[p] {
		n.divert(p, m)
		return true, nil
	}
	if m.Kind != MsgTimer {
		n.trace = append(n.trace, m)
		if n.deliverHook != nil {
			if err := n.deliverHook(m); err != nil {
				return false, fmt.Errorf("sim: delivering %v: %w", m, err)
			}
		}
		if n.tel.Enabled() {
			n.observeDelivery(m)
		}
	} else if n.tel.Enabled() {
		n.tel.Reg().Counter("sim.timers").Inc()
	}
	n.ctx.self = m.To
	node.OnMessage(&n.ctx, m)
	return true, nil
}

// scheduleCrashes turns the fault plan's crash events into scheduled
// crash/restart messages and records each node's restart ticks in At
// order. The sort is stable, so equal-tick crash events keep the
// plan's order by construction (Validate additionally guarantees the
// windows don't overlap).
func (n *Network) scheduleCrashes() {
	if n.faults == nil {
		return
	}
	evs := append([]CrashEvent(nil), n.faults.Crashes...)
	slices.SortStableFunc(evs, func(a, b CrashEvent) int {
		if a.At != b.At {
			return int(a.At - b.At)
		}
		return strings.Compare(string(a.Node), string(b.Node))
	})
	for _, ev := range evs {
		end := ev.At + ev.Downtime
		p := n.slot(ev.Node)
		n.crashEnds[p] = append(n.crashEnds[p], end)
		n.schedule(Message{At: ev.At, From: ev.Node, To: ev.Node, Kind: MsgCrash, Tag: "crash"})
		n.schedule(Message{At: end, From: ev.Node, To: ev.Node, Kind: MsgRestart, Tag: "restart"})
	}
}

// handleCrash marks the node down and wipes its volatile state. The
// event lands in the trace: the audit log records the outage.
func (n *Network) handleCrash(m Message, p int32, node Node) {
	n.down[p] = true
	ends := n.crashEnds[p]
	n.restartAt[p] = ends[0]
	n.crashEnds[p] = ends[1:]
	n.fstats.Crashes++
	n.trace = append(n.trace, m)
	if r, ok := node.(Recoverable); ok {
		r.Crash()
	}
	if n.tel.Enabled() {
		n.tel.Reg().Counter("sim.crashes").Inc()
		n.tel.Trace().Event("sim.crash",
			obs.Int64("t", int64(m.At)),
			obs.Str("node", string(m.To)))
	}
}

// handleRestart brings the node back and lets it restore from its
// durable log.
func (n *Network) handleRestart(m Message, p int32, node Node) {
	n.down[p] = false
	n.fstats.Restarts++
	n.trace = append(n.trace, m)
	if r, ok := node.(Recoverable); ok {
		n.ctx.self = m.To
		r.Restore(&n.ctx)
	}
	if n.tel.Enabled() {
		n.tel.Reg().Counter("sim.restarts").Inc()
		n.tel.Trace().Event("sim.restart",
			obs.Int64("t", int64(m.At)),
			obs.Str("node", string(m.To)))
	}
}

// divert disposes of a message addressed to a down node: timers and
// notifications are lost (the node was not there to hear them);
// reliable traffic is re-delivered right after the restart.
func (n *Network) divert(p int32, m Message) {
	if !reliable(m) {
		// Best-effort notifications and armed timers die with the node:
		// a crashed trustee's deadline timer is gone, and recovery must
		// re-arm it from the durable log.
		n.fstats.CrashDrops++
		if n.tel.Enabled() {
			n.tel.Reg().Counter("sim.faults.crash_drops").Inc()
		}
		return
	}
	n.fstats.Deferred++
	if n.tel.Enabled() {
		n.tel.Reg().Counter("sim.faults.deferred").Inc()
	}
	m.At = n.restartAt[p]
	n.schedule(m)
}

// observeDelivery emits the audit-log record of one delivered message:
// virtual timestamp, endpoints, kind, the action performed, and whether
// it is a compensation (refund/unwind) or a tagged control message.
// Together with sim.drop events this is the replayable §5 commit/unwind
// log — ReplayBalances reconstructs the final balances from exactly
// these transfers.
func (n *Network) observeDelivery(m Message) {
	reg := n.tel.Reg()
	reg.Counter("sim.messages").Inc()
	kind := "notify"
	if m.Kind == MsgTransfer {
		kind = "transfer"
		reg.Counter("sim.transfers").Inc()
		if m.Action.Inverse {
			reg.Counter("sim.unwinds").Inc()
		}
	}
	n.tel.Trace().Event("sim.deliver",
		obs.Int64("t", int64(m.At)),
		obs.Str("kind", kind),
		obs.Str("from", string(m.From)),
		obs.Str("to", string(m.To)),
		obs.Str("action", m.Action.String()),
		obs.Bool("unwind", m.Kind == MsgTransfer && m.Action.Inverse),
		obs.Str("tag", m.Tag))
}

// Context is the API a node uses during a callback. The network hands
// every callback the same scratch Context, so a node must not retain
// it past the callback's return.
type Context struct {
	net  *Network
	self model.PartyID
}

// Now returns the virtual time.
func (c *Context) Now() Time { return c.net.now }

// Self returns the node's ID.
func (c *Context) Self() model.PartyID { return c.self }

// SendTransfer performs and sends a transfer action. The sender is
// debited immediately through the runner's ledger hook (so in-flight
// assets cannot be double-spent); the receiver is credited at delivery.
// It fails when the sender cannot fund the transfer.
func (c *Context) SendTransfer(a model.Action) error {
	m := Message{From: c.self, To: receiverNode(a), Kind: MsgTransfer, Action: a}
	if c.net.sendHook != nil {
		if err := c.net.sendHook(m); err != nil {
			return err
		}
	}
	c.net.send(m)
	return nil
}

// SendNotify sends a notification action.
func (c *Context) SendNotify(to model.PartyID) {
	c.net.send(Message{From: c.self, To: to, Kind: MsgNotify, Action: model.Notify(c.self, to)})
}

// SendTagged sends a notification carrying a protocol tag (e.g. the
// persona trustee's recall demand). Tagged notifies are control
// messages; they do not enter the exchange state.
func (c *Context) SendTagged(to model.PartyID, tag string) {
	c.net.send(Message{From: c.self, To: to, Kind: MsgNotify, Tag: tag, Action: model.Notify(c.self, to)})
}

// SetTimer schedules a wakeup after delay.
func (c *Context) SetTimer(delay Time, tag string) {
	c.net.timer(c.self, c.net.now+delay, tag)
}

// receiverNode is the party that receives the message carrying the
// action: the physical receiver of the asset.
func receiverNode(a model.Action) model.PartyID {
	if a.IsTransfer() {
		return a.Receiver()
	}
	return a.To
}

// Package sim executes synthesized exchange protocols on a simulated
// distributed system: every principal and trusted component is a node
// exchanging messages over a lossless but latency-laden network with a
// virtual clock, deposits carry deadlines, trusted components enforce
// their Section 2.5 guarantees (complete when whole, unwind on expiry),
// and any subset of principals can be replaced by defectors. The
// simulation validates the paper's protection claim (E11): honest
// parties never lose assets, whatever the defectors do — except when a
// defector was *directly trusted* (a persona trustee), which is exactly
// the risk a direct-trust declaration accepts.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"trustseq/internal/model"
	"trustseq/internal/obs"
)

// Time is virtual time in ticks.
type Time int64

// MsgKind classifies simulator messages.
type MsgKind int

// Message kinds. Transfers move assets through the ledger; notifies move
// information; timers are self-scheduled wakeups.
const (
	MsgTransfer MsgKind = iota + 1
	MsgNotify
	MsgTimer
)

// String names the kind.
func (k MsgKind) String() string {
	switch k {
	case MsgTransfer:
		return "transfer"
	case MsgNotify:
		return "notify"
	case MsgTimer:
		return "timer"
	default:
		return fmt.Sprintf("msg(%d)", int(k))
	}
}

// Message is one network event.
type Message struct {
	At       Time
	From, To model.PartyID
	Kind     MsgKind
	// Action is the model action a transfer or notify performs.
	Action model.Action
	// Tag carries timer identification (e.g. "deadline:3").
	Tag string

	seq int // FIFO tiebreaker for equal delivery times
}

// String renders the message.
func (m Message) String() string {
	switch m.Kind {
	case MsgTimer:
		return fmt.Sprintf("@%d timer %s at %s", m.At, m.Tag, m.To)
	case MsgNotify:
		return fmt.Sprintf("@%d %v", m.At, m.Action)
	default:
		return fmt.Sprintf("@%d %v", m.At, m.Action)
	}
}

type queue []*Message

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x interface{}) { *q = append(*q, x.(*Message)) }
func (q *queue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// Node is a simulated participant.
type Node interface {
	ID() model.PartyID
	// Init runs before the first event; nodes schedule their opening
	// moves here.
	Init(ctx *Context)
	// OnMessage handles one delivered message.
	OnMessage(ctx *Context, m Message)
}

// Network is the deterministic discrete-event simulator core.
type Network struct {
	nodes    map[model.PartyID]Node
	q        queue
	now      Time
	seq      int
	rng      *rand.Rand
	baseLat  Time
	jitter   Time
	trace    []Message
	maxMsgs  int
	dropRate float64
	dropped  int

	// sendHook runs when a transfer is sent (debit the sender);
	// deliverHook runs when it is delivered (credit the receiver). The
	// runner wires these to the ledger.
	sendHook    func(Message) error
	deliverHook func(Message) error

	// tel receives one trace event per delivered message (the
	// replayable audit log) plus drop events; nil disables.
	tel *obs.Telemetry
}

// SetHooks installs the asset-movement callbacks.
func (n *Network) SetHooks(onSend, onDeliver func(Message) error) {
	n.sendHook = onSend
	n.deliverHook = onDeliver
}

// Config tunes the network.
type Config struct {
	Seed        int64
	BaseLatency Time // per-message latency floor (default 1)
	Jitter      Time // uniform extra latency in [0, Jitter] (default 3)
	MaxMessages int  // runaway guard (default 100_000)
	// NotifyDropRate is the probability in [0,1) that a notification
	// (control-plane message) is lost. Transfers are never dropped: the
	// value-transfer layer is assumed reliable, exactly as the paper
	// scopes out payment-mechanism failures; loss of notifications is
	// the distributed-systems failure the deadline machinery must
	// absorb.
	NotifyDropRate float64
	// Obs receives per-message trace events and network counters.
	// Telemetry is additive: it never alters scheduling, so a traced
	// run is tick-for-tick identical to an untraced one.
	Obs *obs.Telemetry
}

// NewNetwork builds an empty network.
func NewNetwork(cfg Config) *Network {
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 1
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.MaxMessages <= 0 {
		cfg.MaxMessages = 100_000
	}
	return &Network{
		nodes:    make(map[model.PartyID]Node),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		baseLat:  cfg.BaseLatency,
		jitter:   cfg.Jitter,
		maxMsgs:  cfg.MaxMessages,
		dropRate: cfg.NotifyDropRate,
		tel:      cfg.Obs,
	}
}

// AddNode registers a node.
func (n *Network) AddNode(node Node) {
	n.nodes[node.ID()] = node
}

// Now returns the current virtual time.
func (n *Network) Now() Time { return n.now }

// Trace returns every delivered message, in delivery order.
func (n *Network) Trace() []Message { return append([]Message(nil), n.trace...) }

func (n *Network) schedule(m *Message) {
	m.seq = n.seq
	n.seq++
	heap.Push(&n.q, m)
}

// Dropped reports the number of notifications lost in transit.
func (n *Network) Dropped() int { return n.dropped }

// send schedules a message with network latency. Notifications may be
// lost; transfers never are.
func (n *Network) send(m Message) {
	if m.Kind == MsgNotify && n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.dropped++
		if n.tel.Enabled() {
			n.tel.Reg().Counter("sim.notifies.dropped").Inc()
			n.tel.Trace().Event("sim.drop",
				obs.Int64("t", int64(n.now)),
				obs.Str("from", string(m.From)),
				obs.Str("to", string(m.To)))
		}
		return
	}
	lat := n.baseLat
	if n.jitter > 0 {
		lat += Time(n.rng.Int63n(int64(n.jitter) + 1))
	}
	m.At = n.now + lat
	n.schedule(&m)
}

// timer schedules a self-wakeup at an absolute time.
func (n *Network) timer(to model.PartyID, at Time, tag string) {
	n.schedule(&Message{At: at, From: to, To: to, Kind: MsgTimer, Tag: tag})
}

// Run initializes every node and processes events to quiescence.
func (n *Network) Run() error {
	ids := make([]model.PartyID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	// Deterministic init order.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		node := n.nodes[id]
		node.Init(&Context{net: n, self: id})
	}
	processed := 0
	for n.q.Len() > 0 {
		m := heap.Pop(&n.q).(*Message)
		if m.At > n.now {
			n.now = m.At
		}
		processed++
		if processed > n.maxMsgs {
			return fmt.Errorf("sim: exceeded %d messages; likely livelock", n.maxMsgs)
		}
		node, ok := n.nodes[m.To]
		if !ok {
			return fmt.Errorf("sim: message to unknown node %s", m.To)
		}
		if m.Kind != MsgTimer {
			n.trace = append(n.trace, *m)
			if n.deliverHook != nil {
				if err := n.deliverHook(*m); err != nil {
					return fmt.Errorf("sim: delivering %v: %w", m, err)
				}
			}
			if n.tel.Enabled() {
				n.observeDelivery(*m)
			}
		} else if n.tel.Enabled() {
			n.tel.Reg().Counter("sim.timers").Inc()
		}
		node.OnMessage(&Context{net: n, self: m.To}, *m)
	}
	return nil
}

// observeDelivery emits the audit-log record of one delivered message:
// virtual timestamp, endpoints, kind, the action performed, and whether
// it is a compensation (refund/unwind) or a tagged control message.
// Together with sim.drop events this is the replayable §5 commit/unwind
// log — ReplayBalances reconstructs the final balances from exactly
// these transfers.
func (n *Network) observeDelivery(m Message) {
	reg := n.tel.Reg()
	reg.Counter("sim.messages").Inc()
	kind := "notify"
	if m.Kind == MsgTransfer {
		kind = "transfer"
		reg.Counter("sim.transfers").Inc()
		if m.Action.Inverse {
			reg.Counter("sim.unwinds").Inc()
		}
	}
	n.tel.Trace().Event("sim.deliver",
		obs.Int64("t", int64(m.At)),
		obs.Str("kind", kind),
		obs.Str("from", string(m.From)),
		obs.Str("to", string(m.To)),
		obs.Str("action", m.Action.String()),
		obs.Bool("unwind", m.Kind == MsgTransfer && m.Action.Inverse),
		obs.Str("tag", m.Tag))
}

// Context is the API a node uses during a callback.
type Context struct {
	net  *Network
	self model.PartyID
}

// Now returns the virtual time.
func (c *Context) Now() Time { return c.net.now }

// Self returns the node's ID.
func (c *Context) Self() model.PartyID { return c.self }

// SendTransfer performs and sends a transfer action. The sender is
// debited immediately through the runner's ledger hook (so in-flight
// assets cannot be double-spent); the receiver is credited at delivery.
// It fails when the sender cannot fund the transfer.
func (c *Context) SendTransfer(a model.Action) error {
	m := Message{From: c.self, To: receiverNode(a), Kind: MsgTransfer, Action: a}
	if c.net.sendHook != nil {
		if err := c.net.sendHook(m); err != nil {
			return err
		}
	}
	c.net.send(m)
	return nil
}

// SendNotify sends a notification action.
func (c *Context) SendNotify(to model.PartyID) {
	c.net.send(Message{From: c.self, To: to, Kind: MsgNotify, Action: model.Notify(c.self, to)})
}

// SendTagged sends a notification carrying a protocol tag (e.g. the
// persona trustee's recall demand). Tagged notifies are control
// messages; they do not enter the exchange state.
func (c *Context) SendTagged(to model.PartyID, tag string) {
	c.net.send(Message{From: c.self, To: to, Kind: MsgNotify, Tag: tag, Action: model.Notify(c.self, to)})
}

// SetTimer schedules a wakeup after delay.
func (c *Context) SetTimer(delay Time, tag string) {
	c.net.timer(c.self, c.net.now+delay, tag)
}

// receiverNode is the party that receives the message carrying the
// action: the physical receiver of the asset.
func receiverNode(a model.Action) model.PartyID {
	if a.IsTransfer() {
		return a.Receiver()
	}
	return a.To
}

// Package sim executes synthesized exchange protocols on a simulated
// distributed system: every principal and trusted component is a node
// exchanging messages over a lossless but latency-laden network with a
// virtual clock, deposits carry deadlines, trusted components enforce
// their Section 2.5 guarantees (complete when whole, unwind on expiry),
// and any subset of principals can be replaced by defectors. The
// simulation validates the paper's protection claim (E11): honest
// parties never lose assets, whatever the defectors do — except when a
// defector was *directly trusted* (a persona trustee), which is exactly
// the risk a direct-trust declaration accepts.
//
// # Key types
//
//   - Network is the virtual-time message fabric; Config sets latency,
//     seed and fault injection; Message / MsgKind are the wire
//     vocabulary; Time is the virtual clock.
//   - Node is the behaviour interface; TrustedNode and PrincipalNode are
//     the honest implementations (a PrincipalNode with stopAfter set
//     models a defector that walks away mid-protocol); Recoverable marks
//     nodes that survive crash/restart faults.
//   - FaultPlan / FaultMenu / Partition / CrashEvent describe injected
//     faults; SampleFaultPlan and ChaosOptions derive deterministic
//     plans from a seed; FaultStats and ChaosViolations aggregate and
//     audit outcomes. ReplayBalances recomputes final holdings from the
//     message trace alone, cross-checking the ledger.
//   - Run (run.go) is the one-call wrapper the CLI, service and sweep
//     use: synthesize, wire up nodes, execute, audit.
//
// # Concurrency and ownership
//
// The simulator is deliberately single-threaded: one goroutine owns the
// Network and steps virtual time by draining a deterministic priority
// queue, so a (problem, seed, fault plan) triple always yields an
// identical trace — there is no real concurrency to race. Nodes are
// owned by their Network and must not be shared across simulations.
// Callers get parallelism by running independent simulations on
// independent Networks (the chaos gate and sweep do this), which is safe
// because simulations share only immutable inputs.
package sim

package sim

import (
	"testing"

	"trustseq/internal/model"
	"trustseq/internal/paperex"
)

// Control-plane message loss: dropped notifications can stall the
// protocol, but the deadline machinery unwinds it and nobody loses
// assets at ANY drop rate. (The §6 collateral poster is again the
// contractual exception once the protected principal has paid — here we
// use Example 1, which has no collateral.)
func TestNotifyLossNeverLosesAssets(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	completedRuns, stalledRuns := 0, 0
	for _, rate := range []float64{0.1, 0.3, 0.6, 1.0} {
		for seed := int64(0); seed < 12; seed++ {
			res, err := Run(pl, Options{
				Seed:           seed,
				Jitter:         4,
				Deadline:       60,
				NotifyDropRate: rate,
			})
			if err != nil {
				t.Fatalf("rate %.1f seed %d: %v", rate, seed, err)
			}
			if res.Completed() {
				completedRuns++
			} else {
				stalledRuns++
			}
			for _, id := range []model.PartyID{paperex.Consumer, paperex.Broker, paperex.Producer} {
				if !res.AssetsSafeFor(id) {
					t.Errorf("rate %.1f seed %d: %s lost assets:\n%s", rate, seed, id, res.Summary())
				}
			}
		}
	}
	// A 100% drop rate must stall the broker-dependent protocol at least
	// once, proving the fault injection is real.
	if stalledRuns == 0 {
		t.Errorf("no run ever stalled despite heavy notify loss")
	}
	// And light loss should still let some runs through.
	if completedRuns == 0 {
		t.Errorf("no run ever completed despite retries")
	}
}

// Full notification loss: the broker never learns the money is waiting,
// the deadlines expire, and the trusted components return everything.
func TestTotalNotifyLossRefundsEverything(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	res, err := Run(pl, Options{Seed: 5, Deadline: 50, NotifyDropRate: 1.0})
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	if res.Completed() {
		t.Fatalf("completed without any notifications")
	}
	if res.DroppedNotifies == 0 {
		t.Fatalf("no notifications dropped at rate 1.0")
	}
	if got := res.Balances[paperex.Consumer].Cash; got != paperex.RetailPrice {
		t.Errorf("consumer not fully refunded: %v", got)
	}
	if res.Balances[paperex.Producer].Items[paperex.Doc] != 1 {
		t.Errorf("producer did not get the document back")
	}
	for _, id := range []model.PartyID{paperex.Trusted1, paperex.Trusted2} {
		if !res.TrustedNeutral(id) {
			t.Errorf("%s retained assets: %v", id, res.Balances[id])
		}
	}
}

// Drop statistics are reported and deterministic per seed.
func TestDropAccountingDeterministic(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example2Indemnified())
	a, err := Run(pl, Options{Seed: 9, Deadline: 80, NotifyDropRate: 0.5})
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	b, err := Run(pl, Options{Seed: 9, Deadline: 80, NotifyDropRate: 0.5})
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	if a.DroppedNotifies != b.DroppedNotifies || a.Messages != b.Messages {
		t.Fatalf("nondeterministic under drops: %d/%d vs %d/%d",
			a.DroppedNotifies, a.Messages, b.DroppedNotifies, b.Messages)
	}
}

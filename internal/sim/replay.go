package sim

import (
	"fmt"

	"trustseq/internal/ledger"
	"trustseq/internal/model"
)

// ReplayBalances reconstructs final balances from a delivered-message
// trace alone: every transfer is replayed through a fresh ledger
// (sender debited, receiver credited, conservation audited), and the
// result must equal the balances the live run produced. This is the
// audit-log property the trace exists for — a run's Trace is a complete
// record of the commits and unwinds, sufficient to re-derive who ended
// up with what without re-executing the protocol.
//
// The live run routes in-flight assets through a transit account
// between send and delivery; since a quiescent run's transit account is
// empty (Run errors otherwise), replaying each delivered transfer as a
// direct sender-to-receiver movement lands on the same final holdings.
func ReplayBalances(p *model.Problem, trace []Message) (map[model.PartyID]*model.Holding, error) {
	book := ledger.New(model.InitialHoldings(p))
	for i, m := range trace {
		if m.Kind != MsgTransfer {
			continue
		}
		if err := book.Transfer(m.Action.Mover(), m.Action.Receiver(), m.Action.Asset(), m.Action.String()); err != nil {
			return nil, fmt.Errorf("sim: replaying trace entry %d (%v): %w", i, m, err)
		}
	}
	if err := book.Audit(); err != nil {
		return nil, fmt.Errorf("sim: replayed ledger fails audit: %w", err)
	}
	out := make(map[model.PartyID]*model.Holding, len(p.Parties))
	for _, pa := range p.Parties {
		out[pa.ID] = book.Balance(pa.ID)
	}
	return out, nil
}

// ReplayBalances re-derives the run's final balances from its own
// trace; see the package-level ReplayBalances.
func (r *Result) ReplayBalances() (map[model.PartyID]*model.Holding, error) {
	return ReplayBalances(r.Problem, r.Trace)
}

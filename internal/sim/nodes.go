package sim

import (
	"fmt"
	"strconv"
	"strings"

	"trustseq/internal/core"
	"trustseq/internal/model"
)

// TrustedNode implements the Section 2.5 trusted-component guarantee:
// hold deposits in escrow, notify the counterpart when one side is whole,
// complete (forward everything) when every adjacent exchange is whole,
// and unwind (refund) whatever is held when a deadline expires first.
// Indemnity collateral held at this node settles per Section 6.
//
// Honest is false when the component is a persona played by a defecting
// principal: the node then absorbs everything and never completes nor
// refunds — the exact risk a direct-trust declaration accepts.
type TrustedNode struct {
	Problem  *model.Problem
	Self     model.PartyID
	Deadline Time
	Honest   bool
	// PersonaOwner, when set, is the principal playing this trusted role.
	// An honest persona forwards the owner's goods early (Section 4.2.3's
	// risk-free access).
	PersonaOwner model.PartyID

	adjacent []int // exchange indices mediated here

	// Volatile working state, lost on a crash and rebuilt from the wal.
	// The containers are slab-style (see arena.go): zero-value-ready,
	// reset in place, no per-node map allocations.
	received  actionSet
	refunded  actionSet
	delivered flagSet
	aborted   bool
	// deadlineAt is the earliest armed escrow expiry (0 = unarmed); a
	// recovering node re-arms it, or unwinds immediately if it passed
	// while the node was down.
	deadlineAt Time

	collateral flagSet // offer index -> currently held
	settled    flagSet // offer index -> refunded or paid out

	// wal is the durable escrow log: every state mutation is appended
	// before it is applied, so Restore can rebuild the exact pre-crash
	// state by replay. (The in-flight ledger is the network's problem;
	// the wal covers only this node's decisions.)
	wal []walEntry
}

var _ Node = (*TrustedNode)(nil)
var _ Recoverable = (*TrustedNode)(nil)

// walOp enumerates the durable log record types.
type walOp int

const (
	walReceived walOp = iota + 1
	walRefunded
	walDelivered
	walUndelivered
	walAborted
	walCollateral
	walSettled
	walDeadline
)

// walEntry is one durable log record. Action is set for walReceived and
// walRefunded, idx for the exchange/offer records, at for walDeadline
// (the absolute expiry tick).
type walEntry struct {
	op     walOp
	action model.Action
	idx    int
	at     Time
}

// logApply appends a record to the durable log, then applies it to the
// volatile state. All trusted-node mutations flow through here so a
// crash can never observe a half-recorded decision (the simulator only
// crashes nodes between messages).
func (n *TrustedNode) logApply(e walEntry) {
	n.wal = append(n.wal, e)
	n.apply(e)
}

// apply mutates the volatile state per one log record.
func (n *TrustedNode) apply(e walEntry) {
	switch e.op {
	case walReceived:
		n.received.add(e.action)
	case walRefunded:
		n.refunded.add(e.action)
	case walDelivered:
		n.delivered.set(e.idx, true)
	case walUndelivered:
		n.delivered.set(e.idx, false)
	case walAborted:
		n.aborted = true
	case walCollateral:
		n.collateral.set(e.idx, true)
	case walSettled:
		n.settled.set(e.idx, true)
	case walDeadline:
		if n.deadlineAt == 0 || e.at < n.deadlineAt {
			n.deadlineAt = e.at
		}
	}
}

// armDeadline records and schedules an escrow expiry Deadline ticks out.
func (n *TrustedNode) armDeadline(ctx *Context, tag string) {
	n.logApply(walEntry{op: walDeadline, at: ctx.Now() + n.Deadline})
	ctx.SetTimer(n.Deadline, tag)
}

// Crash implements Recoverable: volatile state is lost; the wal (and
// the node's configuration) survives.
func (n *TrustedNode) Crash() {
	n.received.reset()
	n.refunded.reset()
	n.delivered.reset()
	n.collateral.reset()
	n.settled.reset()
	n.aborted = false
	n.deadlineAt = 0
}

// Restore implements Recoverable: replay the durable log, then run the
// recovery protocol — re-arm the escrow clock (or unwind with
// compensations immediately if it expired during the outage), resume an
// interrupted unwind, and retry any completion that was in flight.
func (n *TrustedNode) Restore(ctx *Context) {
	for _, e := range n.wal {
		n.apply(e)
	}
	if !n.Honest {
		return // the corrupted persona absorbs; it runs no recovery
	}
	if n.deadlineAt != 0 && !n.aborted {
		if ctx.Now() >= n.deadlineAt {
			n.onDeadline(ctx)
		} else {
			ctx.SetTimer(n.deadlineAt-ctx.Now(), "deadline:recovered")
		}
	}
	if n.aborted {
		n.retryRefunds(ctx)
		return
	}
	n.maybeForwardPersona(ctx)
	n.maybeComplete(ctx)
}

// NewTrustedNode builds the node for one trusted component.
func NewTrustedNode(p *model.Problem, self model.PartyID, deadline Time, honest bool) *TrustedNode {
	n := &TrustedNode{
		Problem:  p,
		Self:     self,
		Deadline: deadline,
		Honest:   honest,
	}
	for _, ei := range p.ExchangesOf(self) {
		if p.Exchanges[ei].Trusted == self {
			n.adjacent = append(n.adjacent, ei)
		}
	}
	if q, ok := p.PersonaOf(self); ok {
		n.PersonaOwner = q
	}
	return n
}

// ID implements Node.
func (n *TrustedNode) ID() model.PartyID { return n.Self }

// Init implements Node.
func (n *TrustedNode) Init(*Context) {}

// OnMessage implements Node.
func (n *TrustedNode) OnMessage(ctx *Context, m Message) {
	if !n.Honest {
		return // absorb silently: the defecting trustee
	}
	switch m.Kind {
	case MsgTimer:
		if strings.HasPrefix(m.Tag, "deadline") {
			n.onDeadline(ctx)
		}
	case MsgTransfer:
		n.onTransfer(ctx, m.Action)
	case MsgNotify:
		// Trusted components ignore notifications.
	}
}

func (n *TrustedNode) onTransfer(ctx *Context, a model.Action) {
	// Returned goods: the compensation of a receipt this node forwarded
	// (a persona owner answering a recall). Un-deliver and retry refunds.
	if a.Inverse {
		for _, ei := range n.adjacent {
			for _, r := range model.ReceiptActions(n.Problem.Exchanges[ei]) {
				if r.Compensation() == a && n.delivered.get(ei) {
					n.logApply(walEntry{op: walUndelivered, idx: ei})
					n.retryRefunds(ctx)
					return
				}
			}
		}
		return // other inverses (stray refunds) are final
	}
	if oi, ok := n.matchCollateral(a); ok {
		n.logApply(walEntry{op: walCollateral, idx: oi})
		n.logApply(walEntry{op: walReceived, action: a})
		if n.aborted {
			// Collateral delayed past the unwind (a partition or spike
			// held it in transit): settle it immediately under the
			// deadline rule instead of absorbing it.
			n.settleOffer(ctx, oi, n.Problem.Indemnities[oi])
			return
		}
		n.armDeadline(ctx, "deadline:collateral")
		// Confirm the indemnity account to the protected principal: its
		// split-dependent deposits wait for this (Section 6 — the
		// customer treats the transfers as separate transactions only
		// once the collateral exists).
		off := n.Problem.Indemnities[oi]
		ctx.SendTagged(n.Problem.Exchanges[off.Covers].Principal, "posted:"+strconv.Itoa(oi))
		return
	}
	ei, ok := n.matchDeposit(a)
	if !ok {
		// Unsolicited transfer: return it.
		n.refundAction(ctx, a)
		return
	}
	if n.aborted {
		if n.delivered.get(ei) {
			// A persona owner settling its withdrawal with payment after
			// the unwind: accept and finish the counterpart sides.
			n.logApply(walEntry{op: walReceived, action: a})
			n.settleAfterAbort(ctx)
			return
		}
		// Late deposit to an unwound exchange: bounce it.
		n.refundAction(ctx, a)
		return
	}
	first := !n.anyDepositReceived()
	n.logApply(walEntry{op: walReceived, action: a})
	if first {
		n.armDeadline(ctx, "deadline:"+strconv.Itoa(ei))
	}
	if n.exchangeWhole(ei) {
		// Notify the principals of the still-missing sides.
		for _, ej := range n.adjacent {
			if ej != ei && !n.exchangeWhole(ej) {
				ctx.SendNotify(n.Problem.Exchanges[ej].Principal)
			}
		}
	}
	n.maybeForwardPersona(ctx)
	n.maybeComplete(ctx)
}

// retryRefunds refunds held, unrefunded deposits of undelivered
// exchanges during an unwind, as returned assets make them fundable.
func (n *TrustedNode) retryRefunds(ctx *Context) {
	for _, ei := range n.adjacent {
		if n.delivered.get(ei) {
			continue
		}
		for _, d := range model.DepositActions(n.Problem.Exchanges[ei]) {
			if n.received.has(d) && !n.refunded.has(d) {
				if err := ctx.SendTransfer(d.Compensation()); err == nil {
					n.logApply(walEntry{op: walRefunded, action: d})
				}
			}
		}
	}
}

// settleAfterAbort completes counterpart sides once a withdrawn persona
// exchange has been paid for after the deadline.
func (n *TrustedNode) settleAfterAbort(ctx *Context) {
	for _, ei := range n.adjacent {
		if !n.exchangeWhole(ei) {
			return
		}
	}
	for _, ei := range n.adjacent {
		if n.delivered.get(ei) {
			continue
		}
		allSent := true
		for _, r := range model.ReceiptActions(n.Problem.Exchanges[ei]) {
			if err := ctx.SendTransfer(r); err != nil {
				allSent = false
			}
		}
		if allSent {
			n.logApply(walEntry{op: walDelivered, idx: ei})
		}
	}
}

// maybeForwardPersona implements the honest persona's early forwarding:
// the owner may take goods destined for it before paying.
func (n *TrustedNode) maybeForwardPersona(ctx *Context) {
	if n.PersonaOwner == "" {
		return
	}
	for _, ei := range n.adjacent {
		e := n.Problem.Exchanges[ei]
		if e.Principal != n.PersonaOwner || n.delivered.get(ei) {
			continue
		}
		// Forward when every item of the owner's Gets has arrived from
		// the counterpart side.
		ready := true
		for _, r := range model.ReceiptActions(e) {
			if r.Kind == model.ActionGive && !n.holdsItem(r.Item) {
				ready = false
			}
		}
		if !ready {
			continue
		}
		n.logApply(walEntry{op: walDelivered, idx: ei})
		for _, r := range model.ReceiptActions(e) {
			if err := ctx.SendTransfer(r); err != nil {
				n.logApply(walEntry{op: walUndelivered, idx: ei})
				return
			}
		}
	}
}

func (n *TrustedNode) holdsItem(item model.ItemID) bool {
	for _, a := range n.received.keys {
		if a.Kind == model.ActionGive && a.Item == item && !n.refunded.has(a) {
			return true
		}
	}
	return false
}

func (n *TrustedNode) maybeComplete(ctx *Context) {
	for _, ei := range n.adjacent {
		if !n.exchangeWhole(ei) {
			return
		}
	}
	for _, ei := range n.adjacent {
		if n.delivered.get(ei) {
			continue
		}
		n.logApply(walEntry{op: walDelivered, idx: ei})
		for _, r := range model.ReceiptActions(n.Problem.Exchanges[ei]) {
			if err := ctx.SendTransfer(r); err != nil {
				// Completion failure indicates a runner bug; surface via
				// the runner's fault channel through a refund.
				n.logApply(walEntry{op: walUndelivered, idx: ei})
				return
			}
		}
	}
	// Everything delivered: refund live collateral to its offerers.
	for oi, off := range n.Problem.Indemnities {
		if off.Via != n.Self || !n.collateral.get(oi) || n.settled.get(oi) {
			continue
		}
		n.logApply(walEntry{op: walSettled, idx: oi})
		post := model.Pay(off.By, n.Self, n.offerAmount(off))
		_ = ctx.SendTransfer(post.Compensation())
	}
}

func (n *TrustedNode) onDeadline(ctx *Context) {
	if n.aborted {
		return
	}
	complete := true
	for _, ei := range n.adjacent {
		if !n.delivered.get(ei) {
			complete = false
		}
	}
	if complete {
		return
	}
	n.logApply(walEntry{op: walAborted})
	// Settle collateral first: a covered, attempted, undelivered exchange
	// forfeits the collateral to the protected principal.
	for oi, off := range n.Problem.Indemnities {
		if off.Via != n.Self || !n.collateral.get(oi) || n.settled.get(oi) {
			continue
		}
		n.settleOffer(ctx, oi, off)
	}
	// Refund every held, undelivered deposit the node can still fund.
	n.retryRefunds(ctx)
	// Withdrawn-but-unpaid persona exchanges: demand return or payment.
	for _, ei := range n.adjacent {
		e := n.Problem.Exchanges[ei]
		if e.Principal == n.PersonaOwner && n.delivered.get(ei) && !n.exchangeWhole(ei) {
			ctx.SendTagged(n.PersonaOwner, "recall:"+strconv.Itoa(ei))
		}
	}
}

// settleOffer resolves one held collateral account under the deadline
// rule: a covered, attempted, undelivered exchange forfeits the
// collateral to the protected principal; otherwise it is refunded to
// the offerer. Called from onDeadline for each held offer, and from the
// transfer handler when collateral arrives after the unwind already ran.
func (n *TrustedNode) settleOffer(ctx *Context, oi int, off model.IndemnityOffer) {
	n.logApply(walEntry{op: walSettled, idx: oi})
	amount := n.offerAmount(off)
	if n.depositAttempted(off.Covers) && !n.delivered.get(off.Covers) {
		_ = ctx.SendTransfer(model.Pay(n.Self, n.Problem.Exchanges[off.Covers].Principal, amount))
		return
	}
	post := model.Pay(off.By, n.Self, amount)
	_ = ctx.SendTransfer(post.Compensation())
}

func (n *TrustedNode) offerAmount(off model.IndemnityOffer) model.Money {
	if off.Amount != 0 {
		return off.Amount
	}
	return model.RequiredIndemnity(n.Problem, off.Covers)
}

func (n *TrustedNode) depositAttempted(ei int) bool {
	for _, d := range model.DepositActions(n.Problem.Exchanges[ei]) {
		if !n.received.has(d) {
			return false
		}
	}
	return true
}

func (n *TrustedNode) anyDepositReceived() bool {
	for _, a := range n.received.keys {
		if a.Kind != model.ActionNotify {
			return true
		}
	}
	return false
}

func (n *TrustedNode) exchangeWhole(ei int) bool {
	for _, d := range model.DepositActions(n.Problem.Exchanges[ei]) {
		if !n.received.has(d) || n.refunded.has(d) {
			return false
		}
	}
	return true
}

func (n *TrustedNode) matchDeposit(a model.Action) (int, bool) {
	for _, ei := range n.adjacent {
		for _, d := range model.DepositActions(n.Problem.Exchanges[ei]) {
			if d == a {
				return ei, true
			}
		}
	}
	return 0, false
}

func (n *TrustedNode) matchCollateral(a model.Action) (int, bool) {
	for oi, off := range n.Problem.Indemnities {
		if off.Via != n.Self {
			continue
		}
		if model.Pay(off.By, n.Self, n.offerAmount(off)) == a {
			return oi, true
		}
	}
	return 0, false
}

func (n *TrustedNode) refundAction(ctx *Context, a model.Action) {
	if !a.IsTransfer() || a.Inverse {
		return
	}
	_ = ctx.SendTransfer(a.Compensation())
}

// PrincipalNode executes one principal's slice of a synthesized plan.
// Its script is the ordered list of the principal's own action steps;
// each step waits for the notifications and deliveries addressed to the
// principal that precede it in the plan (the causal prerequisites), then
// fires.
//
// StopAfter bounds the number of script steps performed: a value < 0
// means honest (no bound); 0 is a fully silent defector; k > 0 defects
// after k steps.
type PrincipalNode struct {
	Problem   *model.Problem
	Self      model.PartyID
	StopAfter int

	script []scriptStep
	next   int
	seen   actionSet
	// seenTags is allocated lazily: tagged control messages only flow
	// on the indemnity and recall paths, so most principals never pay
	// for the map.
	seenTags map[string]bool
	fired    int
	faults   []error
	recalls  []*recallState
	// sent records every transfer this node successfully sent; recall
	// settlement consults it so a deposit the script already paid is not
	// paid again (and makes the recall moot — the owner's side is
	// settled).
	sent actionSet
}

// markTag records a seen control tag, allocating the map on first use.
func (n *PrincipalNode) markTag(tag string) {
	if n.seenTags == nil {
		n.seenTags = make(map[string]bool, 4)
	}
	n.seenTags[tag] = true
}

// sawTag reports whether a control tag has been seen.
func (n *PrincipalNode) sawTag(tag string) bool { return n.seenTags[tag] }

// recallState tracks one unwind demand from a persona trustee until the
// owner settles it. Settlement may not be immediately fundable under
// chaos — the goods or funds can sit in another escrow in flight — so
// the node re-attempts on every subsequent delivery instead of giving
// up. Once the first transfer of a path succeeds the state commits to
// that path (returning or paying); retries then only send the
// remainder, never both sides.
type recallState struct {
	ei   int
	mode recallMode
	sent map[model.Action]bool
	done bool
}

type recallMode int

const (
	recallUndecided recallMode = iota
	recallReturning
	recallPaying
)

var _ Node = (*PrincipalNode)(nil)

type scriptStep struct {
	actions []model.Action
	// waitFor are actions addressed to this principal that must have
	// been observed before the step fires.
	waitFor []model.Action
	// waitTags are control confirmations (collateral postings) that must
	// have been observed.
	waitTags []string
	// waitAny holds groups of alternatives: for each group, at least one
	// of its actions must have been observed (e.g. "the wholesale
	// intermediary notified me" OR "it already delivered the item").
	waitAny [][]model.Action
}

// NewPrincipalNode derives one principal's script from the plan. It is
// a convenience for tests and single-node callers; building a whole
// population goes through BuildPrincipalNodes, which derives every
// script in one pass over the plan.
func NewPrincipalNode(plan *core.Plan, self model.PartyID, stopAfter int) *PrincipalNode {
	for _, n := range BuildPrincipalNodes(plan, map[model.PartyID]int{self: stopAfter}) {
		if n.Self == self {
			return n
		}
	}
	return nil
}

// BuildPrincipalNodes derives the script of every principal in one
// pass over plan.Steps. The per-principal derivation is exactly
// NewPrincipalNode's: each principal accumulates the actions and
// control tags addressed to it in step order, and snapshots that
// prefix as the wait set of each of its own deposit/post steps. Doing
// all principals in a single pass turns an O(principals × steps)
// build — quadratic at population scale, since steps grow with
// principals — into O(steps × step fan-out).
//
// defectors maps principals to their StopAfter bound; absent
// principals are honest (StopAfter -1).
// snapshotPrefix freezes the current contents of an append-only slice
// without copying: the capacity cap makes the snapshot un-appendable,
// and since the source only ever grows past its current length, the
// shared prefix is immutable. The script builder leans on this — a
// population producer observes thousands of actions across its steps,
// and copying each step's cumulative prefix was the single largest
// allocation in a large-population setup (~24 KB per principal).
func snapshotPrefix[T any](s []T) []T {
	return s[:len(s):len(s)]
}

func BuildPrincipalNodes(plan *core.Plan, defectors map[model.PartyID]int) []*PrincipalNode {
	p := plan.Problem
	idx := make(map[model.PartyID]int32, len(p.Parties))
	nodes := make([]*PrincipalNode, 0, len(p.Parties))
	for _, pa := range p.Parties {
		if pa.IsTrusted() {
			continue
		}
		stop := -1
		if k, ok := defectors[pa.ID]; ok {
			stop = k
		}
		idx[pa.ID] = int32(len(nodes))
		nodes = append(nodes, &PrincipalNode{Problem: p, Self: pa.ID, StopAfter: stop})
	}
	observed := make([][]model.Action, len(nodes))
	observedTags := make([][]string, len(nodes))
	for _, st := range plan.Steps {
		switch st.Kind {
		case core.StepNotify, core.StepDeliver, core.StepIndemnityRefund:
			for _, a := range st.Actions {
				recv := a.Receiver()
				if i, ok := idx[recv]; ok {
					observed[i] = append(observed[i], a)
				}
				// A notify can address a party distinct from the asset
				// receiver; both observe it (once, when they coincide).
				if a.Kind == model.ActionNotify && a.To != recv {
					if i, ok := idx[a.To]; ok {
						observed[i] = append(observed[i], a)
					}
				}
			}
		case core.StepIndemnityPost:
			off := p.Indemnities[st.Offer]
			if i, ok := idx[p.Exchanges[off.Covers].Principal]; ok {
				observedTags[i] = append(observedTags[i], "posted:"+strconv.Itoa(st.Offer))
			}
			i, ok := idx[st.From]
			if !ok {
				continue
			}
			// A self-insured offerer posts only once it observes that the
			// covered goods are secured ("once it has obtained a promise
			// from the seller", Section 6): for each covered item, either
			// the wholesale intermediary's notification or the item's
			// actual delivery.
			var anyOf [][]model.Action
			if model.SelfInsured(p, off) {
				anyOf = securingSignals(p, st.From, off)
			}
			nodes[i].script = append(nodes[i].script, scriptStep{
				actions:  append([]model.Action(nil), st.Actions...),
				waitFor:  snapshotPrefix(observed[i]),
				waitTags: snapshotPrefix(observedTags[i]),
				waitAny:  anyOf,
			})
		case core.StepDeposit:
			i, ok := idx[st.From]
			if !ok {
				continue
			}
			nodes[i].script = append(nodes[i].script, scriptStep{
				actions:  append([]model.Action(nil), st.Actions...),
				waitFor:  snapshotPrefix(observed[i]),
				waitTags: snapshotPrefix(observedTags[i]),
			})
		}
	}
	return nodes
}

// securingSignals returns, per covered item, the alternative
// observations that tell the offerer the item is secured: the notify
// from the trusted component of the offerer's purchase exchange for the
// item, or the item's actual delivery to the offerer. Items bought at a
// persona trusted played by the offerer are skipped — it observes its
// own escrow directly.
func securingSignals(p *model.Problem, self model.PartyID, off model.IndemnityOffer) [][]model.Action {
	cov := p.Exchanges[off.Covers]
	var out [][]model.Action
	for _, it := range cov.Gets.Items {
		var alts []model.Action
		for _, ei := range p.ExchangesOf(self) {
			e := p.Exchanges[ei]
			if e.Principal != self || !e.Gets.HasItem(it) {
				continue
			}
			if q, ok := p.PersonaOf(e.Trusted); ok && q == self {
				alts = nil
				break
			}
			alts = append(alts,
				model.Notify(e.Trusted, self),
				model.Give(e.Trusted, self, it),
			)
		}
		if len(alts) > 0 {
			out = append(out, alts)
		}
	}
	return out
}

// ID implements Node.
func (n *PrincipalNode) ID() model.PartyID { return n.Self }

// Init implements Node.
func (n *PrincipalNode) Init(ctx *Context) { n.tryFire(ctx) }

// OnMessage implements Node.
func (n *PrincipalNode) OnMessage(ctx *Context, m Message) {
	if m.Kind == MsgTimer {
		return
	}
	if strings.HasPrefix(m.Tag, "recall:") {
		n.onRecall(ctx, m)
		return
	}
	if m.Tag != "" {
		n.markTag(m.Tag)
	} else {
		n.seen.add(m.Action)
	}
	n.tryFire(ctx)
	n.pumpRecalls(ctx)
}

// onRecall answers a persona trustee's unwind demand: an honest owner
// returns the withdrawn goods if it still holds them, or pays its side
// if it sold them on. A defector (StopAfter reached) ignores the demand
// — the loss lands on the party that declared direct trust.
//
// Handling is idempotent per recall tag: the network may duplicate or
// retry the demand, and answering twice would make an honest owner
// that already returned the goods pay its deposit on top. Settlement
// that cannot be funded yet (the assets are in flight or in another
// escrow) is parked and re-attempted on every later delivery.
func (n *PrincipalNode) onRecall(ctx *Context, m Message) {
	if n.sawTag(m.Tag) {
		return
	}
	n.markTag(m.Tag)
	if n.StopAfter >= 0 && n.fired >= n.StopAfter {
		return
	}
	ei, err := strconv.Atoi(strings.TrimPrefix(m.Tag, "recall:"))
	if err != nil || ei < 0 || ei >= len(n.Problem.Exchanges) {
		return
	}
	if n.Problem.Exchanges[ei].Principal != n.Self {
		return
	}
	rc := &recallState{ei: ei, sent: make(map[model.Action]bool)}
	n.recalls = append(n.recalls, rc)
	n.attemptRecall(ctx, rc)
}

// pumpRecalls re-attempts every unsettled recall; called after each
// delivery, when newly arrived assets may make settlement fundable.
func (n *PrincipalNode) pumpRecalls(ctx *Context) {
	for _, rc := range n.recalls {
		if !rc.done {
			n.attemptRecall(ctx, rc)
		}
	}
}

// attemptRecall advances one recall settlement as far as current
// holdings allow. A recall whose deposits the owner's script already
// paid is moot — the owner's side is settled and the aborted trustee
// forwards or bounces as appropriate. Otherwise the preference order
// matches the honest script: return the withdrawn goods if they can
// still be returned; only when nothing was returnable, pay the owner's
// own side instead.
func (n *PrincipalNode) attemptRecall(ctx *Context, rc *recallState) {
	e := n.Problem.Exchanges[rc.ei]
	deposits := model.DepositActions(e)
	if rc.mode != recallReturning {
		paid := true
		for _, d := range deposits {
			if !n.sent.has(d) && !rc.sent[d] {
				paid = false
			}
		}
		if paid {
			rc.done = true
			return
		}
	}
	if rc.mode == recallUndecided || rc.mode == recallReturning {
		all := true
		for _, r := range model.ReceiptActions(e) {
			c := r.Compensation()
			if rc.sent[c] {
				continue
			}
			if err := ctx.SendTransfer(c); err != nil {
				all = false
				continue
			}
			rc.sent[c] = true
			rc.mode = recallReturning
		}
		if all {
			rc.done = true
			return
		}
		if rc.mode == recallReturning {
			return // committed to returning; retry the remainder later
		}
	}
	all := true
	for _, d := range deposits {
		if rc.sent[d] || n.sent.has(d) {
			continue
		}
		if err := ctx.SendTransfer(d); err != nil {
			all = false
			continue
		}
		rc.sent[d] = true
		rc.mode = recallPaying
	}
	if all {
		rc.done = true
	}
}

// Faults returns protocol errors the node hit (e.g. unfundable steps).
func (n *PrincipalNode) Faults() []error { return n.faults }

func (n *PrincipalNode) tryFire(ctx *Context) {
	for n.next < len(n.script) {
		if n.StopAfter >= 0 && n.fired >= n.StopAfter {
			return // defection point reached
		}
		st := n.script[n.next]
		for _, w := range st.waitFor {
			if !n.seen.has(w) {
				return
			}
		}
		for _, tag := range st.waitTags {
			if !n.sawTag(tag) {
				return
			}
		}
		for _, alts := range st.waitAny {
			sawOne := false
			for _, a := range alts {
				if n.seen.has(a) {
					sawOne = true
					break
				}
			}
			if !sawOne {
				return
			}
		}
		for _, a := range st.actions {
			if err := ctx.SendTransfer(a); err != nil {
				n.faults = append(n.faults, fmt.Errorf("sim: %s step %d: %w", n.Self, n.next, err))
				return
			}
			n.sent.add(a)
		}
		n.next++
		n.fired++
	}
}

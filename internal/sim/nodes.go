package sim

import (
	"fmt"
	"strconv"
	"strings"

	"trustseq/internal/core"
	"trustseq/internal/model"
)

// TrustedNode implements the Section 2.5 trusted-component guarantee:
// hold deposits in escrow, notify the counterpart when one side is whole,
// complete (forward everything) when every adjacent exchange is whole,
// and unwind (refund) whatever is held when a deadline expires first.
// Indemnity collateral held at this node settles per Section 6.
//
// Honest is false when the component is a persona played by a defecting
// principal: the node then absorbs everything and never completes nor
// refunds — the exact risk a direct-trust declaration accepts.
type TrustedNode struct {
	Problem  *model.Problem
	Self     model.PartyID
	Deadline Time
	Honest   bool
	// PersonaOwner, when set, is the principal playing this trusted role.
	// An honest persona forwards the owner's goods early (Section 4.2.3's
	// risk-free access).
	PersonaOwner model.PartyID

	adjacent []int // exchange indices mediated here

	// Volatile working state, lost on a crash and rebuilt from the wal.
	received  map[model.Action]bool
	refunded  map[model.Action]bool
	delivered map[int]bool
	aborted   bool
	// deadlineAt is the earliest armed escrow expiry (0 = unarmed); a
	// recovering node re-arms it, or unwinds immediately if it passed
	// while the node was down.
	deadlineAt Time

	collateral map[int]bool // offer index -> currently held
	settled    map[int]bool // offer index -> refunded or paid out

	// wal is the durable escrow log: every state mutation is appended
	// before it is applied, so Restore can rebuild the exact pre-crash
	// state by replay. (The in-flight ledger is the network's problem;
	// the wal covers only this node's decisions.)
	wal []walEntry
}

var _ Node = (*TrustedNode)(nil)
var _ Recoverable = (*TrustedNode)(nil)

// walOp enumerates the durable log record types.
type walOp int

const (
	walReceived walOp = iota + 1
	walRefunded
	walDelivered
	walUndelivered
	walAborted
	walCollateral
	walSettled
	walDeadline
)

// walEntry is one durable log record. Action is set for walReceived and
// walRefunded, idx for the exchange/offer records, at for walDeadline
// (the absolute expiry tick).
type walEntry struct {
	op     walOp
	action model.Action
	idx    int
	at     Time
}

// logApply appends a record to the durable log, then applies it to the
// volatile state. All trusted-node mutations flow through here so a
// crash can never observe a half-recorded decision (the simulator only
// crashes nodes between messages).
func (n *TrustedNode) logApply(e walEntry) {
	n.wal = append(n.wal, e)
	n.apply(e)
}

// apply mutates the volatile state per one log record.
func (n *TrustedNode) apply(e walEntry) {
	switch e.op {
	case walReceived:
		n.received[e.action] = true
	case walRefunded:
		n.refunded[e.action] = true
	case walDelivered:
		n.delivered[e.idx] = true
	case walUndelivered:
		n.delivered[e.idx] = false
	case walAborted:
		n.aborted = true
	case walCollateral:
		n.collateral[e.idx] = true
	case walSettled:
		n.settled[e.idx] = true
	case walDeadline:
		if n.deadlineAt == 0 || e.at < n.deadlineAt {
			n.deadlineAt = e.at
		}
	}
}

// armDeadline records and schedules an escrow expiry Deadline ticks out.
func (n *TrustedNode) armDeadline(ctx *Context, tag string) {
	n.logApply(walEntry{op: walDeadline, at: ctx.Now() + n.Deadline})
	ctx.SetTimer(n.Deadline, tag)
}

// Crash implements Recoverable: volatile state is lost; the wal (and
// the node's configuration) survives.
func (n *TrustedNode) Crash() {
	n.received = make(map[model.Action]bool)
	n.refunded = make(map[model.Action]bool)
	n.delivered = make(map[int]bool)
	n.collateral = make(map[int]bool)
	n.settled = make(map[int]bool)
	n.aborted = false
	n.deadlineAt = 0
}

// Restore implements Recoverable: replay the durable log, then run the
// recovery protocol — re-arm the escrow clock (or unwind with
// compensations immediately if it expired during the outage), resume an
// interrupted unwind, and retry any completion that was in flight.
func (n *TrustedNode) Restore(ctx *Context) {
	for _, e := range n.wal {
		n.apply(e)
	}
	if !n.Honest {
		return // the corrupted persona absorbs; it runs no recovery
	}
	if n.deadlineAt != 0 && !n.aborted {
		if ctx.Now() >= n.deadlineAt {
			n.onDeadline(ctx)
		} else {
			ctx.SetTimer(n.deadlineAt-ctx.Now(), "deadline:recovered")
		}
	}
	if n.aborted {
		n.retryRefunds(ctx)
		return
	}
	n.maybeForwardPersona(ctx)
	n.maybeComplete(ctx)
}

// NewTrustedNode builds the node for one trusted component.
func NewTrustedNode(p *model.Problem, self model.PartyID, deadline Time, honest bool) *TrustedNode {
	n := &TrustedNode{
		Problem:    p,
		Self:       self,
		Deadline:   deadline,
		Honest:     honest,
		received:   make(map[model.Action]bool),
		refunded:   make(map[model.Action]bool),
		delivered:  make(map[int]bool),
		collateral: make(map[int]bool),
		settled:    make(map[int]bool),
	}
	for _, ei := range p.ExchangesOf(self) {
		if p.Exchanges[ei].Trusted == self {
			n.adjacent = append(n.adjacent, ei)
		}
	}
	if q, ok := p.PersonaOf(self); ok {
		n.PersonaOwner = q
	}
	return n
}

// ID implements Node.
func (n *TrustedNode) ID() model.PartyID { return n.Self }

// Init implements Node.
func (n *TrustedNode) Init(*Context) {}

// OnMessage implements Node.
func (n *TrustedNode) OnMessage(ctx *Context, m Message) {
	if !n.Honest {
		return // absorb silently: the defecting trustee
	}
	switch m.Kind {
	case MsgTimer:
		if strings.HasPrefix(m.Tag, "deadline") {
			n.onDeadline(ctx)
		}
	case MsgTransfer:
		n.onTransfer(ctx, m.Action)
	case MsgNotify:
		// Trusted components ignore notifications.
	}
}

func (n *TrustedNode) onTransfer(ctx *Context, a model.Action) {
	// Returned goods: the compensation of a receipt this node forwarded
	// (a persona owner answering a recall). Un-deliver and retry refunds.
	if a.Inverse {
		for _, ei := range n.adjacent {
			for _, r := range model.ReceiptActions(n.Problem.Exchanges[ei]) {
				if r.Compensation() == a && n.delivered[ei] {
					n.logApply(walEntry{op: walUndelivered, idx: ei})
					n.retryRefunds(ctx)
					return
				}
			}
		}
		return // other inverses (stray refunds) are final
	}
	if oi, ok := n.matchCollateral(a); ok {
		n.logApply(walEntry{op: walCollateral, idx: oi})
		n.logApply(walEntry{op: walReceived, action: a})
		if n.aborted {
			// Collateral delayed past the unwind (a partition or spike
			// held it in transit): settle it immediately under the
			// deadline rule instead of absorbing it.
			n.settleOffer(ctx, oi, n.Problem.Indemnities[oi])
			return
		}
		n.armDeadline(ctx, "deadline:collateral")
		// Confirm the indemnity account to the protected principal: its
		// split-dependent deposits wait for this (Section 6 — the
		// customer treats the transfers as separate transactions only
		// once the collateral exists).
		off := n.Problem.Indemnities[oi]
		ctx.SendTagged(n.Problem.Exchanges[off.Covers].Principal, "posted:"+strconv.Itoa(oi))
		return
	}
	ei, ok := n.matchDeposit(a)
	if !ok {
		// Unsolicited transfer: return it.
		n.refundAction(ctx, a)
		return
	}
	if n.aborted {
		if n.delivered[ei] {
			// A persona owner settling its withdrawal with payment after
			// the unwind: accept and finish the counterpart sides.
			n.logApply(walEntry{op: walReceived, action: a})
			n.settleAfterAbort(ctx)
			return
		}
		// Late deposit to an unwound exchange: bounce it.
		n.refundAction(ctx, a)
		return
	}
	first := !n.anyDepositReceived()
	n.logApply(walEntry{op: walReceived, action: a})
	if first {
		n.armDeadline(ctx, "deadline:"+strconv.Itoa(ei))
	}
	if n.exchangeWhole(ei) {
		// Notify the principals of the still-missing sides.
		for _, ej := range n.adjacent {
			if ej != ei && !n.exchangeWhole(ej) {
				ctx.SendNotify(n.Problem.Exchanges[ej].Principal)
			}
		}
	}
	n.maybeForwardPersona(ctx)
	n.maybeComplete(ctx)
}

// retryRefunds refunds held, unrefunded deposits of undelivered
// exchanges during an unwind, as returned assets make them fundable.
func (n *TrustedNode) retryRefunds(ctx *Context) {
	for _, ei := range n.adjacent {
		if n.delivered[ei] {
			continue
		}
		for _, d := range model.DepositActions(n.Problem.Exchanges[ei]) {
			if n.received[d] && !n.refunded[d] {
				if err := ctx.SendTransfer(d.Compensation()); err == nil {
					n.logApply(walEntry{op: walRefunded, action: d})
				}
			}
		}
	}
}

// settleAfterAbort completes counterpart sides once a withdrawn persona
// exchange has been paid for after the deadline.
func (n *TrustedNode) settleAfterAbort(ctx *Context) {
	for _, ei := range n.adjacent {
		if !n.exchangeWhole(ei) {
			return
		}
	}
	for _, ei := range n.adjacent {
		if n.delivered[ei] {
			continue
		}
		allSent := true
		for _, r := range model.ReceiptActions(n.Problem.Exchanges[ei]) {
			if err := ctx.SendTransfer(r); err != nil {
				allSent = false
			}
		}
		if allSent {
			n.logApply(walEntry{op: walDelivered, idx: ei})
		}
	}
}

// maybeForwardPersona implements the honest persona's early forwarding:
// the owner may take goods destined for it before paying.
func (n *TrustedNode) maybeForwardPersona(ctx *Context) {
	if n.PersonaOwner == "" {
		return
	}
	for _, ei := range n.adjacent {
		e := n.Problem.Exchanges[ei]
		if e.Principal != n.PersonaOwner || n.delivered[ei] {
			continue
		}
		// Forward when every item of the owner's Gets has arrived from
		// the counterpart side.
		ready := true
		for _, r := range model.ReceiptActions(e) {
			if r.Kind == model.ActionGive && !n.holdsItem(r.Item) {
				ready = false
			}
		}
		if !ready {
			continue
		}
		n.logApply(walEntry{op: walDelivered, idx: ei})
		for _, r := range model.ReceiptActions(e) {
			if err := ctx.SendTransfer(r); err != nil {
				n.logApply(walEntry{op: walUndelivered, idx: ei})
				return
			}
		}
	}
}

func (n *TrustedNode) holdsItem(item model.ItemID) bool {
	for a := range n.received {
		if a.Kind == model.ActionGive && a.Item == item && !n.refunded[a] {
			return true
		}
	}
	return false
}

func (n *TrustedNode) maybeComplete(ctx *Context) {
	for _, ei := range n.adjacent {
		if !n.exchangeWhole(ei) {
			return
		}
	}
	for _, ei := range n.adjacent {
		if n.delivered[ei] {
			continue
		}
		n.logApply(walEntry{op: walDelivered, idx: ei})
		for _, r := range model.ReceiptActions(n.Problem.Exchanges[ei]) {
			if err := ctx.SendTransfer(r); err != nil {
				// Completion failure indicates a runner bug; surface via
				// the runner's fault channel through a refund.
				n.logApply(walEntry{op: walUndelivered, idx: ei})
				return
			}
		}
	}
	// Everything delivered: refund live collateral to its offerers.
	for oi, off := range n.Problem.Indemnities {
		if off.Via != n.Self || !n.collateral[oi] || n.settled[oi] {
			continue
		}
		n.logApply(walEntry{op: walSettled, idx: oi})
		post := model.Pay(off.By, n.Self, n.offerAmount(off))
		_ = ctx.SendTransfer(post.Compensation())
	}
}

func (n *TrustedNode) onDeadline(ctx *Context) {
	if n.aborted {
		return
	}
	complete := true
	for _, ei := range n.adjacent {
		if !n.delivered[ei] {
			complete = false
		}
	}
	if complete {
		return
	}
	n.logApply(walEntry{op: walAborted})
	// Settle collateral first: a covered, attempted, undelivered exchange
	// forfeits the collateral to the protected principal.
	for oi, off := range n.Problem.Indemnities {
		if off.Via != n.Self || !n.collateral[oi] || n.settled[oi] {
			continue
		}
		n.settleOffer(ctx, oi, off)
	}
	// Refund every held, undelivered deposit the node can still fund.
	n.retryRefunds(ctx)
	// Withdrawn-but-unpaid persona exchanges: demand return or payment.
	for _, ei := range n.adjacent {
		e := n.Problem.Exchanges[ei]
		if e.Principal == n.PersonaOwner && n.delivered[ei] && !n.exchangeWhole(ei) {
			ctx.SendTagged(n.PersonaOwner, "recall:"+strconv.Itoa(ei))
		}
	}
}

// settleOffer resolves one held collateral account under the deadline
// rule: a covered, attempted, undelivered exchange forfeits the
// collateral to the protected principal; otherwise it is refunded to
// the offerer. Called from onDeadline for each held offer, and from the
// transfer handler when collateral arrives after the unwind already ran.
func (n *TrustedNode) settleOffer(ctx *Context, oi int, off model.IndemnityOffer) {
	n.logApply(walEntry{op: walSettled, idx: oi})
	amount := n.offerAmount(off)
	if n.depositAttempted(off.Covers) && !n.delivered[off.Covers] {
		_ = ctx.SendTransfer(model.Pay(n.Self, n.Problem.Exchanges[off.Covers].Principal, amount))
		return
	}
	post := model.Pay(off.By, n.Self, amount)
	_ = ctx.SendTransfer(post.Compensation())
}

func (n *TrustedNode) offerAmount(off model.IndemnityOffer) model.Money {
	if off.Amount != 0 {
		return off.Amount
	}
	return model.RequiredIndemnity(n.Problem, off.Covers)
}

func (n *TrustedNode) depositAttempted(ei int) bool {
	for _, d := range model.DepositActions(n.Problem.Exchanges[ei]) {
		if !n.received[d] {
			return false
		}
	}
	return true
}

func (n *TrustedNode) anyDepositReceived() bool {
	for a, ok := range n.received {
		if ok && a.Kind != model.ActionNotify {
			return true
		}
	}
	return false
}

func (n *TrustedNode) exchangeWhole(ei int) bool {
	for _, d := range model.DepositActions(n.Problem.Exchanges[ei]) {
		if !n.received[d] || n.refunded[d] {
			return false
		}
	}
	return true
}

func (n *TrustedNode) matchDeposit(a model.Action) (int, bool) {
	for _, ei := range n.adjacent {
		for _, d := range model.DepositActions(n.Problem.Exchanges[ei]) {
			if d == a {
				return ei, true
			}
		}
	}
	return 0, false
}

func (n *TrustedNode) matchCollateral(a model.Action) (int, bool) {
	for oi, off := range n.Problem.Indemnities {
		if off.Via != n.Self {
			continue
		}
		if model.Pay(off.By, n.Self, n.offerAmount(off)) == a {
			return oi, true
		}
	}
	return 0, false
}

func (n *TrustedNode) refundAction(ctx *Context, a model.Action) {
	if !a.IsTransfer() || a.Inverse {
		return
	}
	_ = ctx.SendTransfer(a.Compensation())
}

// PrincipalNode executes one principal's slice of a synthesized plan.
// Its script is the ordered list of the principal's own action steps;
// each step waits for the notifications and deliveries addressed to the
// principal that precede it in the plan (the causal prerequisites), then
// fires.
//
// StopAfter bounds the number of script steps performed: a value < 0
// means honest (no bound); 0 is a fully silent defector; k > 0 defects
// after k steps.
type PrincipalNode struct {
	Problem   *model.Problem
	Self      model.PartyID
	StopAfter int

	script   []scriptStep
	next     int
	seen     map[model.Action]bool
	seenTags map[string]bool
	fired    int
	faults   []error
	recalls  []*recallState
	// sent records every transfer this node successfully sent; recall
	// settlement consults it so a deposit the script already paid is not
	// paid again (and makes the recall moot — the owner's side is
	// settled).
	sent map[model.Action]bool
}

// recallState tracks one unwind demand from a persona trustee until the
// owner settles it. Settlement may not be immediately fundable under
// chaos — the goods or funds can sit in another escrow in flight — so
// the node re-attempts on every subsequent delivery instead of giving
// up. Once the first transfer of a path succeeds the state commits to
// that path (returning or paying); retries then only send the
// remainder, never both sides.
type recallState struct {
	ei   int
	mode recallMode
	sent map[model.Action]bool
	done bool
}

type recallMode int

const (
	recallUndecided recallMode = iota
	recallReturning
	recallPaying
)

var _ Node = (*PrincipalNode)(nil)

type scriptStep struct {
	actions []model.Action
	// waitFor are actions addressed to this principal that must have
	// been observed before the step fires.
	waitFor []model.Action
	// waitTags are control confirmations (collateral postings) that must
	// have been observed.
	waitTags []string
	// waitAny holds groups of alternatives: for each group, at least one
	// of its actions must have been observed (e.g. "the wholesale
	// intermediary notified me" OR "it already delivered the item").
	waitAny [][]model.Action
}

// NewPrincipalNode derives the principal's script from the plan.
func NewPrincipalNode(plan *core.Plan, self model.PartyID, stopAfter int) *PrincipalNode {
	n := &PrincipalNode{
		Problem:   plan.Problem,
		Self:      self,
		StopAfter: stopAfter,
		seen:      make(map[model.Action]bool),
		seenTags:  make(map[string]bool),
		sent:      make(map[model.Action]bool),
	}
	var observed []model.Action
	var observedTags []string
	for _, st := range plan.Steps {
		switch st.Kind {
		case core.StepNotify, core.StepDeliver, core.StepIndemnityRefund:
			for _, a := range st.Actions {
				if a.Receiver() == self || (a.Kind == model.ActionNotify && a.To == self) {
					observed = append(observed, a)
				}
			}
		case core.StepIndemnityPost:
			off := plan.Problem.Indemnities[st.Offer]
			if plan.Problem.Exchanges[off.Covers].Principal == self {
				observedTags = append(observedTags, "posted:"+strconv.Itoa(st.Offer))
			}
			if st.From != self {
				continue
			}
			// A self-insured offerer posts only once it observes that the
			// covered goods are secured ("once it has obtained a promise
			// from the seller", Section 6): for each covered item, either
			// the wholesale intermediary's notification or the item's
			// actual delivery.
			var anyOf [][]model.Action
			if model.SelfInsured(plan.Problem, off) {
				anyOf = securingSignals(plan.Problem, self, off)
			}
			n.script = append(n.script, scriptStep{
				actions:  append([]model.Action(nil), st.Actions...),
				waitFor:  append([]model.Action(nil), observed...),
				waitTags: append([]string(nil), observedTags...),
				waitAny:  anyOf,
			})
		case core.StepDeposit:
			if st.From != self {
				continue
			}
			n.script = append(n.script, scriptStep{
				actions:  append([]model.Action(nil), st.Actions...),
				waitFor:  append([]model.Action(nil), observed...),
				waitTags: append([]string(nil), observedTags...),
			})
		}
	}
	return n
}

// securingSignals returns, per covered item, the alternative
// observations that tell the offerer the item is secured: the notify
// from the trusted component of the offerer's purchase exchange for the
// item, or the item's actual delivery to the offerer. Items bought at a
// persona trusted played by the offerer are skipped — it observes its
// own escrow directly.
func securingSignals(p *model.Problem, self model.PartyID, off model.IndemnityOffer) [][]model.Action {
	cov := p.Exchanges[off.Covers]
	var out [][]model.Action
	for _, it := range cov.Gets.Items {
		var alts []model.Action
		for _, ei := range p.ExchangesOf(self) {
			e := p.Exchanges[ei]
			if e.Principal != self || !e.Gets.HasItem(it) {
				continue
			}
			if q, ok := p.PersonaOf(e.Trusted); ok && q == self {
				alts = nil
				break
			}
			alts = append(alts,
				model.Notify(e.Trusted, self),
				model.Give(e.Trusted, self, it),
			)
		}
		if len(alts) > 0 {
			out = append(out, alts)
		}
	}
	return out
}

// ID implements Node.
func (n *PrincipalNode) ID() model.PartyID { return n.Self }

// Init implements Node.
func (n *PrincipalNode) Init(ctx *Context) { n.tryFire(ctx) }

// OnMessage implements Node.
func (n *PrincipalNode) OnMessage(ctx *Context, m Message) {
	if m.Kind == MsgTimer {
		return
	}
	if strings.HasPrefix(m.Tag, "recall:") {
		n.onRecall(ctx, m)
		return
	}
	if m.Tag != "" {
		n.seenTags[m.Tag] = true
	} else {
		n.seen[m.Action] = true
	}
	n.tryFire(ctx)
	n.pumpRecalls(ctx)
}

// onRecall answers a persona trustee's unwind demand: an honest owner
// returns the withdrawn goods if it still holds them, or pays its side
// if it sold them on. A defector (StopAfter reached) ignores the demand
// — the loss lands on the party that declared direct trust.
//
// Handling is idempotent per recall tag: the network may duplicate or
// retry the demand, and answering twice would make an honest owner
// that already returned the goods pay its deposit on top. Settlement
// that cannot be funded yet (the assets are in flight or in another
// escrow) is parked and re-attempted on every later delivery.
func (n *PrincipalNode) onRecall(ctx *Context, m Message) {
	if n.seenTags[m.Tag] {
		return
	}
	n.seenTags[m.Tag] = true
	if n.StopAfter >= 0 && n.fired >= n.StopAfter {
		return
	}
	ei, err := strconv.Atoi(strings.TrimPrefix(m.Tag, "recall:"))
	if err != nil || ei < 0 || ei >= len(n.Problem.Exchanges) {
		return
	}
	if n.Problem.Exchanges[ei].Principal != n.Self {
		return
	}
	rc := &recallState{ei: ei, sent: make(map[model.Action]bool)}
	n.recalls = append(n.recalls, rc)
	n.attemptRecall(ctx, rc)
}

// pumpRecalls re-attempts every unsettled recall; called after each
// delivery, when newly arrived assets may make settlement fundable.
func (n *PrincipalNode) pumpRecalls(ctx *Context) {
	for _, rc := range n.recalls {
		if !rc.done {
			n.attemptRecall(ctx, rc)
		}
	}
}

// attemptRecall advances one recall settlement as far as current
// holdings allow. A recall whose deposits the owner's script already
// paid is moot — the owner's side is settled and the aborted trustee
// forwards or bounces as appropriate. Otherwise the preference order
// matches the honest script: return the withdrawn goods if they can
// still be returned; only when nothing was returnable, pay the owner's
// own side instead.
func (n *PrincipalNode) attemptRecall(ctx *Context, rc *recallState) {
	e := n.Problem.Exchanges[rc.ei]
	deposits := model.DepositActions(e)
	if rc.mode != recallReturning {
		paid := true
		for _, d := range deposits {
			if !n.sent[d] && !rc.sent[d] {
				paid = false
			}
		}
		if paid {
			rc.done = true
			return
		}
	}
	if rc.mode == recallUndecided || rc.mode == recallReturning {
		all := true
		for _, r := range model.ReceiptActions(e) {
			c := r.Compensation()
			if rc.sent[c] {
				continue
			}
			if err := ctx.SendTransfer(c); err != nil {
				all = false
				continue
			}
			rc.sent[c] = true
			rc.mode = recallReturning
		}
		if all {
			rc.done = true
			return
		}
		if rc.mode == recallReturning {
			return // committed to returning; retry the remainder later
		}
	}
	all := true
	for _, d := range deposits {
		if rc.sent[d] || n.sent[d] {
			continue
		}
		if err := ctx.SendTransfer(d); err != nil {
			all = false
			continue
		}
		rc.sent[d] = true
		rc.mode = recallPaying
	}
	if all {
		rc.done = true
	}
}

// Faults returns protocol errors the node hit (e.g. unfundable steps).
func (n *PrincipalNode) Faults() []error { return n.faults }

func (n *PrincipalNode) tryFire(ctx *Context) {
	for n.next < len(n.script) {
		if n.StopAfter >= 0 && n.fired >= n.StopAfter {
			return // defection point reached
		}
		st := n.script[n.next]
		for _, w := range st.waitFor {
			if !n.seen[w] {
				return
			}
		}
		for _, tag := range st.waitTags {
			if !n.seenTags[tag] {
				return
			}
		}
		for _, alts := range st.waitAny {
			sawOne := false
			for _, a := range alts {
				if n.seen[a] {
					sawOne = true
					break
				}
			}
			if !sawOne {
				return
			}
		}
		for _, a := range st.actions {
			if err := ctx.SendTransfer(a); err != nil {
				n.faults = append(n.faults, fmt.Errorf("sim: %s step %d: %w", n.Self, n.next, err))
				return
			}
			n.sent[a] = true
		}
		n.next++
		n.fired++
	}
}

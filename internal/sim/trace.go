package sim

import (
	"fmt"
	"strings"
)

// RenderTrace formats a delivered-message trace as a timeline, one line
// per message: virtual time, sender, payload, receiver. Control messages
// (tagged notifies) are annotated; fault events (crash/restart of a
// trusted node) get their own marker lines.
func RenderTrace(trace []Message) string {
	var b strings.Builder
	for _, m := range trace {
		if m.Kind == MsgCrash || m.Kind == MsgRestart {
			fmt.Fprintf(&b, "t=%-4d %-10s ×× %s\n", m.At, m.To, m.Kind)
			continue
		}
		payload := ""
		switch {
		case m.Kind == MsgNotify && m.Tag != "":
			payload = "control:" + m.Tag
		case m.Kind == MsgNotify:
			payload = "notify"
		case m.Action.Inverse:
			payload = "refund " + m.Action.Asset().String()
		default:
			payload = m.Action.Asset().String()
		}
		fmt.Fprintf(&b, "t=%-4d %-10s ──%s──▶ %s\n", m.At, m.From, payload, m.To)
	}
	return b.String()
}

package sim

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"trustseq/internal/obs"
	"trustseq/internal/paperex"
)

// Every fault kind, in isolation: the injector really fires (its
// counter is nonzero on at least one seed), the run is tick-for-tick
// deterministic — same seed, identical trace and accounting — and
// attaching telemetry changes nothing. Table-driven so each new
// injector lands here with one entry.
func TestFaultKindsDeterministic(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		opts    Options // Seed is set per iteration
		counter func(FaultStats) int
	}{
		{
			name:    "dup",
			opts:    Options{Deadline: 60, Faults: &FaultPlan{DupRate: 0.5}},
			counter: func(st FaultStats) int { return st.DupNotifies },
		},
		{
			name:    "reorder",
			opts:    Options{Deadline: 60, Faults: &FaultPlan{ReorderRate: 0.6, ReorderBound: 7}},
			counter: func(st FaultStats) int { return st.Reorders },
		},
		{
			name:    "spike",
			opts:    Options{Deadline: 60, Faults: &FaultPlan{SpikeRate: 0.3, SpikeTicks: 70}},
			counter: func(st FaultStats) int { return st.Spikes },
		},
		{
			name: "partition",
			opts: Options{Deadline: 60, Faults: &FaultPlan{Partitions: []Partition{
				{A: paperex.Trusted2, B: paperex.Broker, From: 0, Until: 30},
			}}},
			counter: func(st FaultStats) int { return st.PartitionDrops + st.Deferred },
		},
		{
			name: "crash-restart",
			opts: Options{Deadline: 60, Faults: &FaultPlan{Crashes: []CrashEvent{
				{Node: paperex.Trusted1, At: 4, Downtime: 15},
			}}},
			counter: func(st FaultStats) int { return st.Crashes + st.Restarts },
		},
		{
			name:    "drop-with-retries",
			opts:    Options{Deadline: 60, NotifyDropRate: 0.4, NotifyRetries: 2},
			counter: func(st FaultStats) int { return st.RetriesSent },
		},
	}
	pl := plan(t, paperex.Example1())
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			fired := false
			for seed := int64(0); seed < 12; seed++ {
				opts := tc.opts
				opts.Seed = seed
				opts.Jitter = 4
				a, err := Run(pl, opts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				b, err := Run(pl, opts)
				if err != nil {
					t.Fatalf("seed %d rerun: %v", seed, err)
				}
				traced := opts
				traced.Obs = &obs.Telemetry{
					Metrics: obs.NewRegistry(),
					Tracer:  obs.NewTracer(obs.NewJSONLSink(io.Discard)),
				}
				c, err := Run(pl, traced)
				if err != nil {
					t.Fatalf("seed %d traced: %v", seed, err)
				}
				ta, tb, tcr := RenderTrace(a.Trace), RenderTrace(b.Trace), RenderTrace(c.Trace)
				if ta != tb {
					t.Fatalf("seed %d: rerun diverged:\n--- a ---\n%s--- b ---\n%s", seed, ta, tb)
				}
				if ta != tcr {
					t.Fatalf("seed %d: telemetry changed the schedule:\n--- bare ---\n%s--- traced ---\n%s", seed, ta, tcr)
				}
				if a.Duration != b.Duration || a.FaultStats != b.FaultStats ||
					a.Duration != c.Duration || a.FaultStats != c.FaultStats {
					t.Fatalf("seed %d: accounting diverged: %+v / %+v / %+v",
						seed, a.FaultStats, b.FaultStats, c.FaultStats)
				}
				if tc.counter(a.FaultStats) > 0 {
					fired = true
				}
			}
			if !fired {
				t.Errorf("injector %q never fired on any seed", tc.name)
			}
		})
	}
}

// A nil or zero plan injects nothing and changes nothing: the RNG
// stream, trace and outcome are byte-identical to a run with no plan at
// all (the compatibility guarantee that keeps every pre-chaos seeded
// test valid).
func TestZeroFaultPlanIsIdentity(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example2Indemnified())
	for seed := int64(0); seed < 10; seed++ {
		bare, err := Run(pl, Options{Seed: seed, Jitter: 5, Deadline: 80})
		if err != nil {
			t.Fatal(err)
		}
		zeroed, err := Run(pl, Options{Seed: seed, Jitter: 5, Deadline: 80, Faults: &FaultPlan{}})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := RenderTrace(bare.Trace), RenderTrace(zeroed.Trace); a != b {
			t.Fatalf("seed %d: zero plan altered the run:\n--- bare ---\n%s--- zero ---\n%s", seed, a, b)
		}
		if bare.Duration != zeroed.Duration {
			t.Fatalf("seed %d: durations diverge: %d vs %d", seed, bare.Duration, zeroed.Duration)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	t.Parallel()
	p := paperex.Example1()
	cases := []struct {
		name string
		fp   *FaultPlan
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &FaultPlan{}, true},
		{"full", &FaultPlan{
			DupRate: 0.2, ReorderRate: 0.3, ReorderBound: 4, SpikeRate: 0.1, SpikeTicks: 50,
			Partitions: []Partition{{A: paperex.Consumer, B: paperex.Trusted1, From: 2, Until: 9}},
			Crashes:    []CrashEvent{{Node: paperex.Trusted1, At: 3, Downtime: 5}},
		}, true},
		{"dup-rate-one", &FaultPlan{DupRate: 1.0}, false},
		{"negative-rate", &FaultPlan{SpikeRate: -0.1}, false},
		{"reorder-without-bound", &FaultPlan{ReorderRate: 0.5}, false},
		{"spike-without-ticks", &FaultPlan{SpikeRate: 0.5}, false},
		{"partition-self-link", &FaultPlan{Partitions: []Partition{
			{A: paperex.Consumer, B: paperex.Consumer, From: 0, Until: 5}}}, false},
		{"partition-unknown-party", &FaultPlan{Partitions: []Partition{
			{A: paperex.Consumer, B: "ghost", From: 0, Until: 5}}}, false},
		{"partition-empty-window", &FaultPlan{Partitions: []Partition{
			{A: paperex.Consumer, B: paperex.Broker, From: 5, Until: 5}}}, false},
		{"crash-untrusted-node", &FaultPlan{Crashes: []CrashEvent{
			{Node: paperex.Broker, At: 1, Downtime: 5}}}, false},
		{"crash-zero-downtime", &FaultPlan{Crashes: []CrashEvent{
			{Node: paperex.Trusted1, At: 1, Downtime: 0}}}, false},
		{"crash-overlapping-windows", &FaultPlan{Crashes: []CrashEvent{
			{Node: paperex.Trusted1, At: 1, Downtime: 10},
			{Node: paperex.Trusted1, At: 5, Downtime: 3}}}, false},
		{"crash-back-to-back", &FaultPlan{Crashes: []CrashEvent{
			{Node: paperex.Trusted1, At: 1, Downtime: 4},
			{Node: paperex.Trusted1, At: 5, Downtime: 3}}}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			err := tc.fp.Validate(p)
			if tc.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Errorf("Validate accepted an invalid plan")
			}
		})
	}
}

// Run rejects invalid plans up front instead of simulating nonsense.
func TestRunRejectsInvalidPlan(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	_, err := Run(pl, Options{Faults: &FaultPlan{DupRate: 2}})
	if err == nil || !strings.Contains(err.Error(), "DupRate") {
		t.Fatalf("Run = %v, want DupRate validation error", err)
	}
}

func TestParseFaultMenu(t *testing.T) {
	t.Parallel()
	cases := []struct {
		spec string
		want FaultMenu
		ok   bool
	}{
		{"", FaultMenu{}, true},
		{"none", FaultMenu{}, true},
		{"all", AllFaults(), true},
		{"dup,crash", FaultMenu{Dup: true, Crash: true}, true},
		{" spike , drop ", FaultMenu{Spike: true, Drop: true}, true},
		{"reorder,partition", FaultMenu{Reorder: true, Partition: true}, true},
		{"bogus", FaultMenu{}, false},
		{"dup,quantum", FaultMenu{}, false},
	}
	for _, tc := range cases {
		got, err := ParseFaultMenu(tc.spec)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseFaultMenu(%q) = %+v, %v; want %+v", tc.spec, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseFaultMenu(%q) accepted an unknown family", tc.spec)
		}
	}
}

func TestFaultMenuString(t *testing.T) {
	t.Parallel()
	if got := AllFaults().String(); got != "all" {
		t.Errorf("AllFaults().String() = %q", got)
	}
	if got := (FaultMenu{}).String(); got != "none" {
		t.Errorf("zero menu String() = %q", got)
	}
	m := FaultMenu{Dup: true, Crash: true}
	if got := m.String(); got != "dup,crash" {
		t.Errorf("String() = %q, want dup,crash", got)
	}
	// String output round-trips through the parser.
	back, err := ParseFaultMenu(m.String())
	if err != nil || back != m {
		t.Errorf("round-trip = %+v, %v", back, err)
	}
}

// SampleFaultPlan only draws from the enabled families and always
// validates against the problem it was sampled for.
func TestSampleFaultPlanRespectsMenu(t *testing.T) {
	t.Parallel()
	p := paperex.Example1()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		fp := SampleFaultPlan(rng, p, FaultMenu{Dup: true, Crash: true}, 60)
		if err := fp.Validate(p); err != nil {
			t.Fatalf("sampled plan invalid: %v", err)
		}
		if fp.DupRate <= 0 || len(fp.Crashes) == 0 {
			t.Fatalf("enabled families not sampled: %+v", fp)
		}
		if fp.ReorderRate != 0 || fp.SpikeRate != 0 || len(fp.Partitions) != 0 {
			t.Fatalf("disabled families sampled: %+v", fp)
		}
		for _, ev := range fp.Crashes {
			pa, ok := p.Party(ev.Node)
			if !ok || !pa.IsTrusted() {
				t.Fatalf("crash sampled for untrusted %s", ev.Node)
			}
		}
	}
}

package sim

import (
	"math/rand"
	"testing"

	"trustseq/internal/core"
	"trustseq/internal/gen"
	"trustseq/internal/model"
)

// Every graph-feasible random problem simulates to completion with all
// parties honest, leaving everyone acceptable and every independent
// trusted component neutral — across several network seeds.
func TestRandomFeasibleProblemsSimulate(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(321))
	simulated := 0
	for i := 0; i < 60 && simulated < 15; i++ {
		p := gen.Random(rng, gen.Options{
			Consumers:       1 + rng.Intn(2),
			Brokers:         1 + rng.Intn(2),
			Producers:       1 + rng.Intn(3),
			MaxPrice:        60,
			DirectTrustProb: 0.3,
		})
		pl, err := core.Synthesize(p)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !pl.Feasible {
			continue
		}
		simulated++
		for seed := int64(0); seed < 3; seed++ {
			res, err := Run(pl, Options{Seed: seed, Jitter: 5})
			if err != nil {
				t.Fatalf("instance %d seed %d: %v", i, seed, err)
			}
			if !res.Completed() {
				t.Fatalf("instance %d seed %d incomplete:\n%s", i, seed, res.Summary())
			}
			for _, pa := range p.Parties {
				if pa.IsTrusted() {
					if _, isPersona := p.PersonaOf(pa.ID); !isPersona && !res.TrustedNeutral(pa.ID) {
						t.Errorf("instance %d: %s not neutral", i, pa.ID)
					}
					continue
				}
				if !res.AcceptableTo(pa.ID) {
					t.Errorf("instance %d seed %d: unacceptable to %s:\n%s", i, seed, pa.ID, res.Summary())
				}
			}
		}
	}
	if simulated < 5 {
		t.Fatalf("only %d feasible instances simulated", simulated)
	}
}

// Defection fuzz: for random feasible problems, silence each principal
// in turn; honest non-offerer parties must keep asset integrity, and
// parties relying only on independent intermediaries must never lose
// anything — unless they extended direct trust to the defector.
func TestRandomDefectionFuzz(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(654))
	checked := 0
	for i := 0; i < 80 && checked < 10; i++ {
		p := gen.Random(rng, gen.Options{
			Consumers: 1, Brokers: 1 + rng.Intn(2), Producers: 1 + rng.Intn(2),
			MaxPrice: 50, DirectTrustProb: 0.25,
		})
		pl, err := core.Synthesize(p)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !pl.Feasible {
			continue
		}
		checked++
		for _, pa := range p.Parties {
			if pa.IsTrusted() {
				continue
			}
			defector := pa.ID
			res, err := Run(pl, Options{Seed: int64(i), Defectors: map[model.PartyID]int{defector: 0}})
			if err != nil {
				t.Fatalf("instance %d defector %s: %v", i, defector, err)
			}
			for _, other := range p.Parties {
				if other.IsTrusted() || other.ID == defector {
					continue
				}
				if TrustsDefectorPersona(p, other.ID, defector) {
					continue // accepted risk: direct trust in the defector
				}
				if !res.AssetsSafeFor(other.ID) {
					t.Errorf("instance %d: honest %s lost assets to silent %s:\n%s",
						i, other.ID, defector, res.Summary())
				}
			}
		}
	}
	if checked < 3 {
		t.Fatalf("only %d feasible instances fuzzed", checked)
	}
}

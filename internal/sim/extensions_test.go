package sim

import (
	"testing"

	"trustseq/internal/model"
	"trustseq/internal/paperex"
)

// E14 (extension; the paper assumes "deadlines ... always sufficiently
// generous" and defers tighter ones to future work): with a deadline too
// short for the protocol to finish, the exchange aborts — and the unwind
// still returns every asset. Asset safety is deadline-independent.
func TestTightDeadlinesAbortCleanly(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	for _, deadline := range []Time{1, 2, 3, 5, 8} {
		res, err := Run(pl, Options{Seed: 3, Jitter: 6, Deadline: deadline})
		if err != nil {
			t.Fatalf("deadline %d: %v", deadline, err)
		}
		for _, id := range []model.PartyID{paperex.Consumer, paperex.Broker, paperex.Producer} {
			if !res.AssetsSafeFor(id) {
				t.Errorf("deadline %d: %s lost assets:\n%s", deadline, id, res.Summary())
			}
		}
		if res.Completed() {
			continue // fast network beat the clock — fine
		}
		// Aborted runs end at the status quo: full refunds.
		if got := res.Balances[paperex.Consumer].Cash; got != paperex.RetailPrice {
			t.Errorf("deadline %d: consumer cash %v after abort", deadline, got)
		}
	}
	// A generous deadline completes.
	res, err := Run(pl, Options{Seed: 3, Jitter: 6, Deadline: 1000})
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	if !res.Completed() {
		t.Fatalf("generous deadline did not complete")
	}
}

// The deadline sweep across ALL feasible fixtures. Finding (documented
// in EXPERIMENTS.md): no deadline value ever costs a NON-offerer honest
// party assets; an indemnity OFFERER, however, bears deadline risk on
// its collateral — if the clock runs out after the protected principal
// paid but before delivery, the penalty forfeits even though the offerer
// is honest. That is the contract working as specified; the paper's
// "sufficiently generous" deadline assumption is exactly what shields
// the offerer.
func TestDeadlineSweepNeverLosesAssets(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"example1", "example2-variant1", "example2-indemnified"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pl := plan(t, paperex.All()[name])
			offerers := make(map[model.PartyID]bool)
			var payouts []model.Action
			for _, off := range pl.Problem.Indemnities {
				offerers[off.By] = true
				amount := off.Amount
				if amount == 0 {
					amount = model.RequiredIndemnity(pl.Problem, off.Covers)
				}
				payouts = append(payouts,
					model.Pay(off.Via, pl.Problem.Exchanges[off.Covers].Principal, amount))
			}
			for deadline := Time(1); deadline <= 30; deadline += 4 {
				res, err := Run(pl, Options{Seed: int64(deadline), Jitter: 5, Deadline: deadline})
				if err != nil {
					t.Fatalf("deadline %d: %v", deadline, err)
				}
				for _, pa := range pl.Problem.Parties {
					if pa.IsTrusted() || res.AssetsSafeFor(pa.ID) {
						continue
					}
					if !offerers[pa.ID] {
						t.Errorf("deadline %d: non-offerer %s lost assets:\n%s", deadline, pa.ID, res.Summary())
						continue
					}
					// An offerer's only permissible loss is the forfeited
					// collateral — the payout must be observable.
					forfeited := false
					for _, payout := range payouts {
						if res.State.Has(payout) {
							forfeited = true
						}
					}
					if !forfeited {
						t.Errorf("deadline %d: offerer %s lost assets without a forfeit:\n%s",
							deadline, pa.ID, res.Summary())
					}
				}
			}
		})
	}
}

// E15 (extension; Section 9: "When an agent is trusted by more than two
// parties, additional distributed exchanges may become feasible"): a
// single trusted component mediating two pairwise exchanges bundles them
// into one atomic unit — its type-1 conjunction spans all four
// commitments, the reduction still clears, and the simulator completes
// both exchanges or neither.
func sharedIntermediaryProblem() *model.Problem {
	return &model.Problem{
		Name: "shared-intermediary",
		Parties: []model.Party{
			{ID: "c1", Role: model.RoleConsumer},
			{ID: "c2", Role: model.RoleConsumer},
			{ID: "p1", Role: model.RoleProducer},
			{ID: "p2", Role: model.RoleProducer},
			{ID: "t", Role: model.RoleTrusted},
		},
		Exchanges: []model.Exchange{
			{Principal: "c1", Trusted: "t", Gives: model.Cash(10), Gets: model.Goods("d1")},
			{Principal: "p1", Trusted: "t", Gives: model.Goods("d1"), Gets: model.Cash(10)},
			{Principal: "c2", Trusted: "t", Gives: model.Cash(20), Gets: model.Goods("d2")},
			{Principal: "p2", Trusted: "t", Gives: model.Goods("d2"), Gets: model.Cash(20)},
		},
	}
}

func TestSharedIntermediaryFeasibleAndAtomic(t *testing.T) {
	t.Parallel()
	p := sharedIntermediaryProblem()
	pl := plan(t, p)
	if err := pl.Verify(); err != nil {
		t.Fatalf("Verify = %v", err)
	}
	// Honest run completes both exchanges.
	res := run(t, pl, Options{Seed: 11, Jitter: 4})
	if !res.Completed() {
		t.Fatalf("shared intermediary did not complete:\n%s", res.Summary())
	}
	// With p2 silent, the shared intermediary refunds EVERYONE — the
	// bundling makes the two unrelated exchanges atomic.
	res = run(t, pl, Options{Defectors: map[model.PartyID]int{"p2": 0}})
	if res.Completed() {
		t.Fatalf("completed despite silent p2")
	}
	if got := res.Balances["c1"].Cash; got != 10 {
		t.Errorf("c1 cash = %v, want full refund", got)
	}
	if got := res.Balances["p1"].Items["d1"]; got != 1 {
		t.Errorf("p1 lost its document: %v", res.Balances["p1"])
	}
	for _, id := range []model.PartyID{"c1", "c2", "p1"} {
		if !res.AssetsSafeFor(id) {
			t.Errorf("%s lost assets:\n%s", id, res.Summary())
		}
	}
	if !res.TrustedNeutral("t") {
		t.Errorf("shared intermediary retained assets: %v", res.Balances["t"])
	}
}

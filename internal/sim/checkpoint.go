package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"trustseq/internal/core"
	"trustseq/internal/model"
)

// This file implements mid-run checkpoint and restore. A checkpoint is
// a complete snapshot of the discrete-event simulation taken between
// two events: virtual clock, RNG position, event queue, trace so far,
// fault bookkeeping, every trusted node's durable log, and every
// principal's script cursor. Restoring rebuilds the same node roster
// from the plan, injects the snapshot, and re-enters the event loop —
// the remaining trace is tick-for-tick identical to the uninterrupted
// run, which the soak harness checks by diffing full-run output against
// checkpoint-then-restore output.
//
// The ledger is deliberately NOT serialized. Balances are a pure
// function of the initial holdings and the transfers performed, so the
// restore replays them: every delivered transfer in the trace moves
// mover → transit → receiver, and every still-pending transfer moves
// mover → transit (the in-flight debit). Replaying in delivery order is
// always fundable: at the point a transfer's debit replays, the replay
// balance exceeds the sender's original send-time balance by exactly
// the transfers that were still in flight, so a debit that funded live
// funds in replay.
//
// File format (all integers little-endian):
//
//	"TSQ8" | u16 version | payload | u32 CRC-32 (IEEE, over all prior bytes)
//
// The payload opens with two FNV-1a fingerprints — one over the plan
// (problem + steps), one over the schedule-affecting options — so a
// checkpoint can only be restored against the run that wrote it.
// Scheduler and MaxMessages are excluded from the options fingerprint
// on purpose: the queue implementation never affects the schedule (the
// (At, seq) order is total), and the livelock guard only caps length.
//
// Failure is closed: a short file, a flipped bit, or a fingerprint
// mismatch yields ErrCheckpointCorrupt / ErrCheckpointMismatch before
// any state is mutated into the result — never a partial restore.

// Typed failures. Corrupt covers structural damage (truncation, CRC or
// bounds violations); Mismatch covers a well-formed checkpoint written
// by a different plan or options.
var (
	ErrCheckpointCorrupt  = errors.New("sim: checkpoint corrupt")
	ErrCheckpointMismatch = errors.New("sim: checkpoint does not match plan/options")
)

// CheckpointSpec asks Run to snapshot the simulation to Path at the
// first event whose delivery tick is >= At, then continue.
type CheckpointSpec struct {
	Path string
	At   Time
}

const (
	ckptMagic   = "TSQ8"
	ckptVersion = 1
)

// planDigest fingerprints everything the node roster and scripts are
// derived from. The unexported Problem fields (index maps, compiled
// tables) are themselves derived, so the exported slices — all plain
// structs — cover it.
func planDigest(plan *core.Plan) uint64 {
	p := plan.Problem
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%v\x00%v\x00%v\x00%v\x00%v\x00%v",
		p.Name, p.Parties, p.Exchanges, p.DirectTrust, p.Indemnities, p.Constraints, plan.Steps)
	return h.Sum64()
}

// optionsDigest fingerprints every option that affects the event
// schedule. opts must already be normalized by setupRun.
func optionsDigest(opts Options) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%v|%d|%d",
		opts.Seed, opts.BaseLatency, opts.Jitter, opts.Deadline,
		opts.NotifyDropRate, opts.NotifyRetries, opts.RetryBase)
	ids := make([]string, 0, len(opts.Defectors))
	for id := range opts.Defectors {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(h, "|%s=%d", id, opts.Defectors[model.PartyID(id)])
	}
	if opts.Faults != nil {
		fmt.Fprintf(h, "|%v", *opts.Faults)
	}
	return h.Sum64()
}

// cenc is the little-endian checkpoint encoder.
type cenc struct{ b []byte }

func (e *cenc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *cenc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *cenc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *cenc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *cenc) i64(v int64)  { e.u64(uint64(v)) }
func (e *cenc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

func (e *cenc) action(a model.Action) {
	e.u8(uint8(a.Kind))
	e.str(string(a.From))
	e.str(string(a.To))
	e.str(string(a.Item))
	e.i64(int64(a.Amount))
	e.bool(a.Inverse)
}

func (e *cenc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *cenc) message(m Message) {
	e.i64(int64(m.At))
	e.str(string(m.From))
	e.str(string(m.To))
	e.u8(uint8(m.Kind))
	e.action(m.Action)
	e.str(m.Tag)
	e.i64(int64(m.seq))
}

// cdec is the bounds-checked decoder: the first out-of-bounds or
// malformed read trips a sticky failure flag and every later read
// returns zero values, so callers check ok once at the end.
type cdec struct {
	b   []byte
	off int
	bad bool
}

func (d *cdec) fail() { d.bad = true }

func (d *cdec) take(n int) []byte {
	if d.bad || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *cdec) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *cdec) u16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (d *cdec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *cdec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *cdec) i64() int64 { return int64(d.u64()) }

func (d *cdec) str() string { return string(d.take(int(d.u32()))) }

func (d *cdec) boolean() bool { return d.u8() != 0 }

// count reads an element count and rejects counts that cannot fit in
// the remaining bytes at `min` bytes per element — a CRC-valid but
// hand-built file must not trigger huge allocations.
func (d *cdec) count(min int) int {
	n := int(d.u32())
	if d.bad || int64(n)*int64(min) > int64(len(d.b)-d.off) {
		d.fail()
		return 0
	}
	return n
}

// Minimum encoded sizes, for count guards.
const (
	minStr     = 4
	minAction  = 1 + 3*minStr + 8 + 1
	minMessage = 8 + 2*minStr + 1 + minAction + minStr + 8
	minWal     = 1 + minAction + 8 + 8
)

func (d *cdec) action() model.Action {
	var a model.Action
	a.Kind = model.ActionKind(d.u8())
	a.From = model.PartyID(d.str())
	a.To = model.PartyID(d.str())
	a.Item = model.ItemID(d.str())
	a.Amount = model.Money(d.i64())
	a.Inverse = d.boolean()
	return a
}

func (d *cdec) message() Message {
	var m Message
	m.At = Time(d.i64())
	m.From = model.PartyID(d.str())
	m.To = model.PartyID(d.str())
	m.Kind = MsgKind(d.u8())
	m.Action = d.action()
	m.Tag = d.str()
	m.seq = int(d.i64())
	return m
}

// armCheckpoint installs the snapshot trigger on the network's event
// hook: the first popped event at or after the spec's tick is captured
// as the head of the pending list and the whole simulation state is
// written out before the event is dispatched.
func (rs *runtime) armCheckpoint() {
	spec := rs.opts.Checkpoint
	written := false
	rs.net.onEvent = func(m Message) error {
		if written || m.At < spec.At {
			return nil
		}
		written = true
		pending := append([]Message{m}, rs.net.q.pending()...)
		if err := writeFileAtomic(spec.Path, rs.encodeCheckpoint(pending)); err != nil {
			return fmt.Errorf("sim: writing checkpoint: %w", err)
		}
		return nil
	}
}

// encodeCheckpoint serializes the full simulation state. pending holds
// every undelivered event, headed by the event the trigger just popped
// (it is re-popped first on restore; the stored processed count is
// pre-decremented to match).
func (rs *runtime) encodeCheckpoint(pending []Message) []byte {
	n := rs.net
	e := &cenc{b: make([]byte, 0, 1<<12)}
	e.b = append(e.b, ckptMagic...)
	e.u16(ckptVersion)
	e.u64(planDigest(rs.plan))
	e.u64(optionsDigest(rs.opts))

	e.i64(int64(n.now))
	e.i64(int64(n.seq))
	e.i64(int64(n.processed - 1)) // the head of pending re-counts on restore
	e.i64(int64(n.dropped))
	e.u64(n.rsrc.n)
	fs := &n.fstats
	for _, v := range []int{fs.DupNotifies, fs.Reorders, fs.Spikes, fs.PartitionDrops,
		fs.CrashDrops, fs.Deferred, fs.RetriesSent, fs.Crashes, fs.Restarts} {
		e.i64(int64(v))
	}

	// Crash bookkeeping: currently-down parties and remaining crash
	// windows, keyed by party ID.
	downs := 0
	for p := range n.nodes {
		if n.down[p] {
			downs++
		}
	}
	e.u32(uint32(downs))
	for p := range n.nodes {
		if n.down[p] {
			e.str(string(n.parties.Key(int32(p))))
			e.i64(int64(n.restartAt[p]))
		}
	}
	ends := 0
	for p := range n.nodes {
		if len(n.crashEnds[p]) > 0 {
			ends++
		}
	}
	e.u32(uint32(ends))
	for p := range n.nodes {
		if len(n.crashEnds[p]) > 0 {
			e.str(string(n.parties.Key(int32(p))))
			e.u32(uint32(len(n.crashEnds[p])))
			for _, t := range n.crashEnds[p] {
				e.i64(int64(t))
			}
		}
	}

	e.u32(uint32(len(n.trace)))
	for _, m := range n.trace {
		e.message(m)
	}
	e.u32(uint32(len(pending)))
	for _, m := range pending {
		e.message(m)
	}

	e.u32(uint32(len(rs.trusted)))
	for _, tn := range rs.trusted {
		e.str(string(tn.Self))
		e.u32(uint32(len(tn.wal)))
		for _, w := range tn.wal {
			e.u8(uint8(w.op))
			e.action(w.action)
			e.i64(int64(w.idx))
			e.i64(int64(w.at))
		}
	}

	e.u32(uint32(len(rs.principals)))
	for _, pn := range rs.principals {
		e.str(string(pn.Self))
		e.i64(int64(pn.next))
		e.i64(int64(pn.fired))
		e.u32(uint32(len(pn.seen.keys)))
		for _, a := range pn.seen.keys {
			e.action(a)
		}
		tags := make([]string, 0, len(pn.seenTags))
		for t := range pn.seenTags {
			tags = append(tags, t)
		}
		sort.Strings(tags)
		e.u32(uint32(len(tags)))
		for _, t := range tags {
			e.str(t)
		}
		e.u32(uint32(len(pn.sent.keys)))
		for _, a := range pn.sent.keys {
			e.action(a)
		}
		e.u32(uint32(len(pn.faults)))
		for _, err := range pn.faults {
			e.str(err.Error())
		}
		e.u32(uint32(len(pn.recalls)))
		for _, rc := range pn.recalls {
			e.i64(int64(rc.ei))
			e.u8(uint8(rc.mode))
			e.bool(rc.done)
			acts := make([]model.Action, 0, len(rc.sent))
			for a := range rc.sent {
				acts = append(acts, a)
			}
			sort.Slice(acts, func(i, j int) bool { return acts[i].String() < acts[j].String() })
			e.u32(uint32(len(acts)))
			for _, a := range acts {
				e.action(a)
			}
		}
	}

	e.u32(crc32.ChecksumIEEE(e.b))
	return e.b
}

// writeFileAtomic writes data through a temp file and a rename, so a
// crash mid-write never leaves a half-written checkpoint at path.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// RestoreRun resumes a checkpointed simulation: it rebuilds the node
// roster from the plan and options (which must match the writing run —
// the fingerprints enforce it), injects the snapshot, and processes the
// remaining events to quiescence. The returned Result is identical to
// the uninterrupted run's, trace byte for trace byte.
//
// Failure is closed: corrupt or mismatched checkpoints return
// ErrCheckpointCorrupt / ErrCheckpointMismatch (wrapped) and no partial
// state. opts.Checkpoint is ignored on restore.
func RestoreRun(plan *core.Plan, opts Options, path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	opts.Checkpoint = nil
	rs, err := setupRun(plan, opts)
	if err != nil {
		return nil, err
	}
	if err := rs.inject(data); err != nil {
		return nil, err
	}
	if err := rs.net.loop(); err != nil {
		return nil, err
	}
	return rs.assemble()
}

// inject validates a checkpoint blob and loads it into the freshly
// assembled runtime.
func (rs *runtime) inject(data []byte) error {
	if len(data) < len(ckptMagic)+2+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return fmt.Errorf("%w: CRC mismatch", ErrCheckpointCorrupt)
	}
	d := &cdec{b: body, off: len(ckptMagic)}
	if v := d.u16(); v != ckptVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCheckpointCorrupt, v)
	}
	if d.u64() != planDigest(rs.plan) {
		return fmt.Errorf("%w: plan fingerprint differs", ErrCheckpointMismatch)
	}
	if d.u64() != optionsDigest(rs.opts) {
		return fmt.Errorf("%w: options fingerprint differs", ErrCheckpointMismatch)
	}

	n := rs.net
	now := Time(d.i64())
	seq := int(d.i64())
	processed := int(d.i64())
	dropped := int(d.i64())
	draws := d.u64()
	var fs FaultStats
	for _, p := range []*int{&fs.DupNotifies, &fs.Reorders, &fs.Spikes, &fs.PartitionDrops,
		&fs.CrashDrops, &fs.Deferred, &fs.RetriesSent, &fs.Crashes, &fs.Restarts} {
		*p = int(d.i64())
	}

	type downRec struct {
		id        model.PartyID
		restartAt Time
	}
	downRecs := make([]downRec, 0, d.count(minStr+8))
	for i := cap(downRecs); i > 0; i-- {
		downRecs = append(downRecs, downRec{model.PartyID(d.str()), Time(d.i64())})
	}
	type endsRec struct {
		id   model.PartyID
		ends []Time
	}
	endsRecs := make([]endsRec, 0, d.count(minStr+4))
	for i := cap(endsRecs); i > 0; i-- {
		id := model.PartyID(d.str())
		ends := make([]Time, 0, d.count(8))
		for j := cap(ends); j > 0; j-- {
			ends = append(ends, Time(d.i64()))
		}
		endsRecs = append(endsRecs, endsRec{id, ends})
	}

	trace := make([]Message, 0, d.count(minMessage))
	for i := cap(trace); i > 0; i-- {
		trace = append(trace, d.message())
	}
	pending := make([]Message, 0, d.count(minMessage))
	for i := cap(pending); i > 0; i-- {
		pending = append(pending, d.message())
	}

	type trustedRec struct {
		id  model.PartyID
		wal []walEntry
	}
	trustedRecs := make([]trustedRec, 0, d.count(minStr+4))
	for i := cap(trustedRecs); i > 0; i-- {
		id := model.PartyID(d.str())
		wal := make([]walEntry, 0, d.count(minWal))
		for j := cap(wal); j > 0; j-- {
			var w walEntry
			w.op = walOp(d.u8())
			w.action = d.action()
			w.idx = int(d.i64())
			w.at = Time(d.i64())
			wal = append(wal, w)
		}
		trustedRecs = append(trustedRecs, trustedRec{id, wal})
	}

	type principalRec struct {
		id          model.PartyID
		next, fired int
		seen, sent  []model.Action
		tags        []string
		faults      []string
		recalls     []*recallState
	}
	principalRecs := make([]principalRec, 0, d.count(minStr+16))
	for i := cap(principalRecs); i > 0; i-- {
		var r principalRec
		r.id = model.PartyID(d.str())
		r.next = int(d.i64())
		r.fired = int(d.i64())
		r.seen = make([]model.Action, 0, d.count(minAction))
		for j := cap(r.seen); j > 0; j-- {
			r.seen = append(r.seen, d.action())
		}
		r.tags = make([]string, 0, d.count(minStr))
		for j := cap(r.tags); j > 0; j-- {
			r.tags = append(r.tags, d.str())
		}
		r.sent = make([]model.Action, 0, d.count(minAction))
		for j := cap(r.sent); j > 0; j-- {
			r.sent = append(r.sent, d.action())
		}
		r.faults = make([]string, 0, d.count(minStr))
		for j := cap(r.faults); j > 0; j-- {
			r.faults = append(r.faults, d.str())
		}
		r.recalls = make([]*recallState, 0, d.count(8+1+1+4))
		for j := cap(r.recalls); j > 0; j-- {
			rc := &recallState{sent: make(map[model.Action]bool)}
			rc.ei = int(d.i64())
			rc.mode = recallMode(d.u8())
			rc.done = d.boolean()
			for k := d.count(minAction); k > 0; k-- {
				rc.sent[d.action()] = true
			}
			if rc.ei < 0 || rc.ei >= len(rs.p.Exchanges) || rc.mode > recallPaying {
				d.fail()
			}
			r.recalls = append(r.recalls, rc)
		}
		principalRecs = append(principalRecs, r)
	}
	if d.bad || d.off != len(d.b) {
		return fmt.Errorf("%w: truncated or trailing data", ErrCheckpointCorrupt)
	}

	// Everything decoded cleanly; load it into the runtime.
	n.now = now
	n.seq = seq
	n.processed = processed
	n.dropped = dropped
	n.fstats = fs
	for i := uint64(0); i < draws; i++ {
		n.rng.Int63() // fast-forward to the recorded RNG position
	}
	for _, r := range downRecs {
		p, ok := n.parties.Lookup(r.id)
		if !ok {
			return fmt.Errorf("%w: unknown down party %s", ErrCheckpointMismatch, r.id)
		}
		n.down[p] = true
		n.restartAt[p] = r.restartAt
	}
	for _, r := range endsRecs {
		p, ok := n.parties.Lookup(r.id)
		if !ok {
			return fmt.Errorf("%w: unknown crash party %s", ErrCheckpointMismatch, r.id)
		}
		n.crashEnds[p] = r.ends
	}
	n.trace = trace
	for _, m := range pending {
		n.q.push(m) // seq already assigned; bypass schedule()
	}

	if err := rs.replayLedger(trace, pending); err != nil {
		return err
	}

	if len(trustedRecs) != len(rs.trusted) {
		return fmt.Errorf("%w: trusted roster differs", ErrCheckpointMismatch)
	}
	byID := make(map[model.PartyID]*TrustedNode, len(rs.trusted))
	for _, tn := range rs.trusted {
		byID[tn.Self] = tn
	}
	for _, r := range trustedRecs {
		tn, ok := byID[r.id]
		if !ok {
			return fmt.Errorf("%w: unknown trusted node %s", ErrCheckpointMismatch, r.id)
		}
		tn.wal = r.wal
		for _, w := range r.wal {
			tn.apply(w)
		}
	}

	if len(principalRecs) != len(rs.principals) {
		return fmt.Errorf("%w: principal roster differs", ErrCheckpointMismatch)
	}
	pByID := make(map[model.PartyID]*PrincipalNode, len(rs.principals))
	for _, pn := range rs.principals {
		pByID[pn.Self] = pn
	}
	for _, r := range principalRecs {
		pn, ok := pByID[r.id]
		if !ok {
			return fmt.Errorf("%w: unknown principal %s", ErrCheckpointMismatch, r.id)
		}
		if r.next < 0 || r.next > len(pn.script) || r.fired < 0 {
			return fmt.Errorf("%w: principal %s cursor out of range", ErrCheckpointMismatch, r.id)
		}
		pn.next = r.next
		pn.fired = r.fired
		for _, a := range r.seen {
			pn.seen.add(a)
		}
		for _, t := range r.tags {
			pn.markTag(t)
		}
		for _, a := range r.sent {
			pn.sent.add(a)
		}
		for _, s := range r.faults {
			pn.faults = append(pn.faults, errors.New(s))
		}
		pn.recalls = r.recalls
	}
	return nil
}

// replayLedger reconstructs the account book: each delivered transfer
// in the trace moves mover → transit → receiver; each still-pending
// transfer holds its in-flight debit, mover → transit.
func (rs *runtime) replayLedger(trace, pending []Message) error {
	for _, m := range trace {
		if m.Kind != MsgTransfer {
			continue
		}
		a := m.Action
		if err := rs.book.Transfer(a.Mover(), transitAccount, a.Asset(), a.String()); err != nil {
			return fmt.Errorf("%w: replaying trace: %v", ErrCheckpointCorrupt, err)
		}
		if err := rs.book.Transfer(transitAccount, a.Receiver(), a.Asset(), a.String()); err != nil {
			return fmt.Errorf("%w: replaying trace: %v", ErrCheckpointCorrupt, err)
		}
	}
	for _, m := range pending {
		if m.Kind != MsgTransfer {
			continue
		}
		a := m.Action
		if err := rs.book.Transfer(a.Mover(), transitAccount, a.Asset(), a.String()); err != nil {
			return fmt.Errorf("%w: replaying in-flight debits: %v", ErrCheckpointCorrupt, err)
		}
	}
	return nil
}

package sim

import (
	"testing"

	"trustseq/internal/core"
	"trustseq/internal/model"
	"trustseq/internal/obs"
	"trustseq/internal/paperex"
)

// holdingsEqual compares two holdings by cash and effective item counts
// (zero-count entries are not holdings).
func holdingsEqual(a, b *model.Holding) bool {
	if a.Cash != b.Cash {
		return false
	}
	for it, n := range a.Items {
		if n != 0 && b.Items[it] != n {
			return false
		}
	}
	for it, n := range b.Items {
		if n != 0 && a.Items[it] != n {
			return false
		}
	}
	return true
}

// TestTraceReplaysToBalances is the audit-log round-trip: for honest,
// defecting and lossy runs across the paper corpus, replaying
// Result.Trace through a fresh ledger reproduces exactly the final
// balances Run reported. The trace is therefore a complete record of
// the run's commits and unwinds.
func TestTraceReplaysToBalances(t *testing.T) {
	t.Parallel()
	for name, p := range paperex.All() {
		pl, err := core.Synthesize(p)
		if err != nil || !pl.Feasible {
			continue // only feasible problems have a plan to run
		}
		scenarios := []Options{
			{Seed: 1, Jitter: 4},
			{Seed: 9, Jitter: 2, NotifyDropRate: 0.5, Deadline: 60},
		}
		// One silent defector per non-trusted party exercises the unwind
		// (compensation) paths of the audit log.
		for _, pa := range p.Parties {
			if !pa.IsTrusted() {
				scenarios = append(scenarios, Options{
					Seed: 3, Jitter: 3, Deadline: 50,
					Defectors: map[model.PartyID]int{pa.ID: 0},
				})
				break
			}
		}
		for si, opts := range scenarios {
			res := run(t, pl, opts)
			replayed, err := res.ReplayBalances()
			if err != nil {
				t.Fatalf("%s scenario %d: replay = %v", name, si, err)
			}
			for _, pa := range p.Parties {
				if !holdingsEqual(replayed[pa.ID], res.Balances[pa.ID]) {
					t.Errorf("%s scenario %d: %s replayed %v != live %v",
						name, si, pa.ID, replayed[pa.ID], res.Balances[pa.ID])
				}
			}
		}
	}
}

// TestRunEmitsAuditEvents confirms a traced run lands one sim.deliver
// event per delivered message, stamped with the virtual clock, and that
// the run span closes with the outcome.
func TestRunEmitsAuditEvents(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	ring := obs.NewRingSink(1 << 12)
	tel := &obs.Telemetry{Tracer: obs.NewTracer(ring), Metrics: obs.NewRegistry()}
	res := run(t, pl, Options{Seed: 5, Jitter: 3, Obs: tel})

	delivers := 0
	var spanClosed bool
	for _, e := range ring.Events() {
		switch {
		case e.Name == "sim.deliver":
			delivers++
		case e.Name == "sim.run" && e.Type == obs.TypeSpanEnd:
			spanClosed = true
		}
	}
	if delivers != res.Messages {
		t.Errorf("sim.deliver events = %d, want %d", delivers, res.Messages)
	}
	if !spanClosed {
		t.Error("sim.run span never closed")
	}
	if got := tel.Metrics.Counter("sim.messages").Value(); got != int64(res.Messages) {
		t.Errorf("sim.messages counter = %d, want %d", got, res.Messages)
	}
}

// TestObsDoesNotChangeSchedule pins the additivity contract: a traced
// run is tick-for-tick identical to an untraced one.
func TestObsDoesNotChangeSchedule(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	bare := run(t, pl, Options{Seed: 42, Jitter: 7, NotifyDropRate: 0.3, Deadline: 80})
	tel := &obs.Telemetry{Tracer: obs.NewTracer(obs.NewRingSink(1 << 12)), Metrics: obs.NewRegistry()}
	traced := run(t, pl, Options{Seed: 42, Jitter: 7, NotifyDropRate: 0.3, Deadline: 80, Obs: tel})
	if bare.Duration != traced.Duration || bare.Messages != traced.Messages ||
		bare.DroppedNotifies != traced.DroppedNotifies {
		t.Errorf("traced run diverged: bare {dur %d msgs %d drop %d} vs traced {dur %d msgs %d drop %d}",
			bare.Duration, bare.Messages, bare.DroppedNotifies,
			traced.Duration, traced.Messages, traced.DroppedNotifies)
	}
	if len(bare.Trace) != len(traced.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(bare.Trace), len(traced.Trace))
	}
	for i := range bare.Trace {
		if bare.Trace[i].String() != traced.Trace[i].String() {
			t.Errorf("trace entry %d differs: %v vs %v", i, bare.Trace[i], traced.Trace[i])
		}
	}
}

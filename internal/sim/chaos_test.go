package sim

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"trustseq/internal/core"
	"trustseq/internal/gen"
	"trustseq/internal/model"
	"trustseq/internal/obs"
	"trustseq/internal/paperex"
)

// chaosCorpus assembles feasible plans across every generator family
// the chaos property sweeps: the paper's fixtures, resale chains,
// broker stars, parallel markets, and random brokered problems.
func chaosCorpus(t testing.TB) []*core.Plan {
	t.Helper()
	var plans []*core.Plan
	add := func(p *model.Problem) {
		pl, err := core.Synthesize(p)
		if err != nil {
			t.Fatalf("synthesize %s: %v", p.Name, err)
		}
		if pl.Feasible {
			plans = append(plans, pl)
		}
	}
	for _, name := range []string{"example1", "example2-variant1", "example2-indemnified"} {
		add(paperex.All()[name])
	}
	for depth := 1; depth <= 3; depth++ {
		add(gen.Chain(depth, model.Money(depth+12)))
	}
	add(gen.Star([]model.Money{8, 13}))
	add(gen.Parallel(2, 9))
	rng := rand.New(rand.NewSource(20260805))
	found := 0
	for i := 0; i < 60 && found < 3; i++ {
		p := gen.Random(rng, gen.Options{
			Consumers: 1, Brokers: 1 + rng.Intn(2), Producers: 1 + rng.Intn(2),
			MaxPrice: 40, DirectTrustProb: 0.3,
		})
		pl, err := core.Synthesize(p)
		if err != nil {
			t.Fatalf("synthesize %s: %v", p.Name, err)
		}
		if pl.Feasible {
			plans = append(plans, pl)
			found++
		}
	}
	if len(plans) < 8 {
		t.Fatalf("chaos corpus too small: %d plans", len(plans))
	}
	return plans
}

// The chaos property (the tentpole's acceptance bar): across at least
// 2000 seeded runs under the full fault menu — duplication, bounded
// reordering, latency spikes, link partitions, crash-restarts of the
// trusted intermediaries and notify loss, with deadlines short enough
// to force unwinds — no honest principal ever breaks the safety
// contract, every trace replays to the live balances, and every fault
// family demonstrably fired.
func TestChaosPropertyHonest(t *testing.T) {
	t.Parallel()
	plans := chaosCorpus(t)
	const seedsPer = 2400/10 + 1
	var total FaultStats
	runs, completed, stalled := 0, 0, 0
	for pi, pl := range plans {
		for s := 0; s < seedsPer; s++ {
			seed := int64(pi)*1_000_003 + int64(s)
			rng := rand.New(rand.NewSource(seed))
			opts := ChaosOptions(rng, pl.Problem, AllFaults(), seed, 0)
			res, err := Run(pl, opts)
			if err != nil {
				t.Fatalf("%s seed %d: %v", pl.Problem.Name, seed, err)
			}
			runs++
			if v := ChaosViolations(res, nil); len(v) > 0 {
				t.Fatalf("%s seed %d: %s\n%s\n%s",
					pl.Problem.Name, seed, strings.Join(v, "; "), RenderTrace(res.Trace), res.Summary())
			}
			if res.Completed() {
				completed++
			} else {
				stalled++
			}
			st := res.FaultStats
			total.DupNotifies += st.DupNotifies
			total.Reorders += st.Reorders
			total.Spikes += st.Spikes
			total.PartitionDrops += st.PartitionDrops
			total.CrashDrops += st.CrashDrops
			total.Deferred += st.Deferred
			total.RetriesSent += st.RetriesSent
			total.Crashes += st.Crashes
			total.Restarts += st.Restarts
		}
	}
	if runs < 2000 {
		t.Fatalf("only %d chaos runs executed, want ≥ 2000", runs)
	}
	// The property is vacuous unless the chaos is real: every fault
	// family must have fired somewhere in the sweep, and the outcomes
	// must include both completions and forced unwinds.
	for _, f := range []struct {
		name string
		n    int
	}{
		{"dup", total.DupNotifies}, {"reorder", total.Reorders}, {"spike", total.Spikes},
		{"partition-drop", total.PartitionDrops}, {"crash-drop", total.CrashDrops},
		{"deferred", total.Deferred}, {"retries", total.RetriesSent},
		{"crashes", total.Crashes}, {"restarts", total.Restarts},
	} {
		if f.n == 0 {
			t.Errorf("fault family %q never fired across %d runs", f.name, runs)
		}
	}
	if completed == 0 || stalled == 0 {
		t.Errorf("outcomes not mixed: %d completed, %d stalled", completed, stalled)
	}
	if total.Crashes != total.Restarts {
		t.Errorf("crash/restart mismatch: %d crashes, %d restarts", total.Crashes, total.Restarts)
	}
}

// Chaos and defection together: silencing each principal in turn under
// the full fault menu never costs any other honest principal assets —
// with the two contractual exceptions ChaosViolations already encodes
// (forfeited collateral with an observable payout; direct trust in the
// defector).
func TestChaosWithDefectors(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"example1", "example2-variant1", "example2-indemnified"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pl := plan(t, paperex.All()[name])
			for _, pa := range pl.Problem.Parties {
				if pa.IsTrusted() {
					continue
				}
				defectors := map[model.PartyID]int{pa.ID: 0}
				for s := int64(0); s < 40; s++ {
					rng := rand.New(rand.NewSource(s * 7_919))
					opts := ChaosOptions(rng, pl.Problem, AllFaults(), s, 0)
					opts.Defectors = defectors
					res, err := Run(pl, opts)
					if err != nil {
						t.Fatalf("defector %s seed %d: %v", pa.ID, s, err)
					}
					if v := ChaosViolations(res, defectors); len(v) > 0 {
						t.Fatalf("defector %s seed %d: %s\n%s",
							pa.ID, s, strings.Join(v, "; "), res.Summary())
					}
				}
			}
		})
	}
}

// A crash-restart straddling the whole protocol: whatever tick the
// trusted nodes go down at, they restore from the durable escrow log to
// a state whose replayed balances match the live run, end neutral, and
// the principals stay whole. Crashing before the deadline resumes the
// escrow; crashing across it runs the unwind (give⁻¹/pay⁻¹
// compensations) on recovery.
func TestCrashRecoveryAtEveryTick(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	for at := Time(1); at <= 50; at += 3 {
		for _, down := range []Time{4, 25, 60} {
			fp := &FaultPlan{Crashes: []CrashEvent{
				{Node: paperex.Trusted1, At: at, Downtime: down},
				{Node: paperex.Trusted2, At: at, Downtime: down},
			}}
			res, err := Run(pl, Options{Seed: int64(at), Jitter: 3, Deadline: 40, Faults: fp})
			if err != nil {
				t.Fatalf("crash@%d+%d: %v", at, down, err)
			}
			if res.FaultStats.Crashes != 2 || res.FaultStats.Restarts != 2 {
				t.Fatalf("crash@%d+%d: %d crashes, %d restarts, want 2 each",
					at, down, res.FaultStats.Crashes, res.FaultStats.Restarts)
			}
			if v := ChaosViolations(res, nil); len(v) > 0 {
				t.Fatalf("crash@%d+%d: %s\n%s\n%s",
					at, down, strings.Join(v, "; "), RenderTrace(res.Trace), res.Summary())
			}
		}
	}
}

// A crash before any deposit arrives is harmless; a crash window that
// swallows the deadline runs the unwind immediately on restart, and the
// refunds land even though the deadline timer itself was lost with the
// crash.
func TestCrashAcrossDeadlineUnwinds(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	fp := &FaultPlan{Crashes: []CrashEvent{{Node: paperex.Trusted1, At: 4, Downtime: 200}}}
	// Deadline 20 expires while t1 is down; nothing can complete because
	// t1 holds the consumer's deposit the broker's side depends on.
	res, err := Run(pl, Options{Seed: 3, Deadline: 20, Faults: fp, NotifyDropRate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed() {
		t.Fatalf("completed despite total notify loss and a crashed trustee")
	}
	if got := res.Balances[paperex.Consumer].Cash; got != paperex.RetailPrice {
		t.Errorf("consumer not refunded after recovery unwind: %v\n%s", got, RenderTrace(res.Trace))
	}
	if !res.TrustedNeutral(paperex.Trusted1) {
		t.Errorf("t1 not neutral after recovery: %v", res.Balances[paperex.Trusted1])
	}
	if v := ChaosViolations(res, nil); len(v) > 0 {
		t.Errorf("violations: %s", strings.Join(v, "; "))
	}
}

// Fault events round-trip through the trace: crashes and restarts are
// recorded, rendered, excluded from the delivered-message count, and
// ReplayBalances reproduces the live balances from a trace containing
// them.
func TestFaultEventsInTrace(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	fp := &FaultPlan{Crashes: []CrashEvent{{Node: paperex.Trusted2, At: 6, Downtime: 9}}}
	res, err := Run(pl, Options{Seed: 11, Deadline: 60, Faults: fp})
	if err != nil {
		t.Fatal(err)
	}
	var crashes, restarts int
	for _, m := range res.Trace {
		switch m.Kind {
		case MsgCrash:
			crashes++
			if m.To != paperex.Trusted2 || m.At != 6 {
				t.Errorf("crash event misrecorded: %v", m)
			}
		case MsgRestart:
			restarts++
			if m.To != paperex.Trusted2 || m.At != 15 {
				t.Errorf("restart event misrecorded: %v", m)
			}
		}
	}
	if crashes != 1 || restarts != 1 {
		t.Fatalf("trace has %d crash, %d restart events, want 1 each", crashes, restarts)
	}
	rendered := RenderTrace(res.Trace)
	if !strings.Contains(rendered, "crash") || !strings.Contains(rendered, "restart") {
		t.Errorf("rendered trace lacks fault markers:\n%s", rendered)
	}
	delivered := 0
	for _, m := range res.Trace {
		if m.Kind != MsgCrash && m.Kind != MsgRestart {
			delivered++
		}
	}
	if res.Messages != delivered {
		t.Errorf("Messages = %d counts fault events (delivered %d)", res.Messages, delivered)
	}
	replayed, err := res.ReplayBalances()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for _, pa := range pl.Problem.Parties {
		if !replayed[pa.ID].Equal(res.Balances[pa.ID]) {
			t.Errorf("replay diverges for %s: %v vs %v", pa.ID, replayed[pa.ID], res.Balances[pa.ID])
		}
	}
}

// The retry layer alone (no fault plan) must also keep the RNG stream
// deterministic and strictly improve delivery under loss: with the same
// seed, a retried run is tick-for-tick reproducible, and across seeds
// retries rescue runs that stall without them.
func TestNotifyRetriesRescueDrops(t *testing.T) {
	t.Parallel()
	pl := plan(t, paperex.Example1())
	rescued := 0
	for seed := int64(0); seed < 30; seed++ {
		base, err := Run(pl, Options{Seed: seed, Deadline: 80, NotifyDropRate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		retried, err := Run(pl, Options{Seed: seed, Deadline: 80, NotifyDropRate: 0.5, NotifyRetries: 3})
		if err != nil {
			t.Fatal(err)
		}
		if retried.FaultStats.RetriesSent == 0 {
			t.Fatalf("seed %d: retry layer sent nothing", seed)
		}
		if !base.Completed() && retried.Completed() {
			rescued++
		}
		if base.Completed() && !retried.Completed() {
			t.Errorf("seed %d: retries broke a completing run", seed)
		}
	}
	if rescued == 0 {
		t.Errorf("retries never rescued a stalled run across 30 seeds")
	}
}

// Telemetry must be purely additive under chaos: a faulted run with a
// live tracer and registry produces the identical trace, duration and
// fault accounting as the same run without observability.
func TestChaosTelemetryAdditive(t *testing.T) {
	t.Parallel()
	plans := chaosCorpus(t)
	for pi, pl := range plans[:4] {
		for s := int64(0); s < 8; s++ {
			seed := int64(pi)*31 + s
			rng := rand.New(rand.NewSource(seed))
			opts := ChaosOptions(rng, pl.Problem, AllFaults(), seed, 0)
			bare, err := Run(pl, opts)
			if err != nil {
				t.Fatal(err)
			}
			rng = rand.New(rand.NewSource(seed))
			traced := ChaosOptions(rng, pl.Problem, AllFaults(), seed, 0)
			traced.Obs = &obs.Telemetry{
				Metrics: obs.NewRegistry(),
				Tracer:  obs.NewTracer(obs.NewJSONLSink(io.Discard)),
			}
			instrumented, err := Run(pl, traced)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := RenderTrace(bare.Trace), RenderTrace(instrumented.Trace); a != b {
				t.Fatalf("%s seed %d: telemetry changed the schedule:\n--- bare ---\n%s--- traced ---\n%s",
					pl.Problem.Name, seed, a, b)
			}
			if bare.Duration != instrumented.Duration || bare.FaultStats != instrumented.FaultStats {
				t.Fatalf("%s seed %d: telemetry changed accounting: %+v vs %+v",
					pl.Problem.Name, seed, bare.FaultStats, instrumented.FaultStats)
			}
		}
	}
}

// Sanity for the printable fault summary used by the CLI gate.
func TestFaultStatsString(t *testing.T) {
	t.Parallel()
	st := FaultStats{DupNotifies: 1, Crashes: 2, Restarts: 2}
	s := fmt.Sprintf("%+v", st)
	if !strings.Contains(s, "Crashes:2") {
		t.Errorf("unexpected rendering: %s", s)
	}
}

package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"trustseq/internal/core"
	"trustseq/internal/gen"
)

// The timing wheel must be observationally identical to the binary-heap
// oracle: events are totally ordered by (At, seq), so any correct queue
// yields the same schedule. This property test runs every generator
// family in the chaos corpus plus a population-scale plan under seeded
// fault plans with both queues and requires byte-identical traces,
// identical realized fault counts, and identical chaos audits.
func TestWheelMatchesHeapAcrossCorpus(t *testing.T) {
	t.Parallel()
	plans := chaosCorpus(t)
	popPlan, err := core.Synthesize(gen.Population(12, 2, 10))
	if err != nil {
		t.Fatalf("synthesize population: %v", err)
	}
	plans = append(plans, popPlan)
	for pi, pl := range plans {
		for s := 0; s < 3; s++ {
			seed := int64(pi)*104729 + int64(s)
			rng := rand.New(rand.NewSource(seed))
			opts := ChaosOptions(rng, pl.Problem, AllFaults(), seed, 0)

			opts.Scheduler = SchedulerWheel
			wheel, err := Run(pl, opts)
			if err != nil {
				t.Fatalf("%s seed %d (wheel): %v", pl.Problem.Name, seed, err)
			}
			opts.Scheduler = SchedulerHeap
			heap, err := Run(pl, opts)
			if err != nil {
				t.Fatalf("%s seed %d (heap): %v", pl.Problem.Name, seed, err)
			}

			if a, b := RenderTrace(wheel.Trace), RenderTrace(heap.Trace); a != b {
				t.Fatalf("%s seed %d: traces diverge between schedulers:\n--- wheel ---\n%s\n--- heap ---\n%s",
					pl.Problem.Name, seed, a, b)
			}
			if wheel.FaultStats != heap.FaultStats {
				t.Fatalf("%s seed %d: fault stats diverge: %+v vs %+v",
					pl.Problem.Name, seed, wheel.FaultStats, heap.FaultStats)
			}
			if a, b := ChaosViolations(wheel, opts.Defectors), ChaosViolations(heap, opts.Defectors); !reflect.DeepEqual(a, b) {
				t.Fatalf("%s seed %d: chaos audits diverge: %v vs %v",
					pl.Problem.Name, seed, a, b)
			}
			if a, b := wheel.Summary(), heap.Summary(); a != b {
				t.Fatalf("%s seed %d: summaries diverge:\n%s\nvs\n%s",
					pl.Problem.Name, seed, a, b)
			}
		}
	}
}

package sim_test

import (
	"fmt"

	"trustseq/internal/core"
	"trustseq/internal/model"
	"trustseq/internal/paperex"
	"trustseq/internal/sim"
)

// ExampleRun executes the Figure 1 protocol on the simulated network.
func ExampleRun() {
	plan, err := core.Synthesize(paperex.Example1())
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(plan, sim.Options{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Completed())
	fmt.Println("consumer has document:", res.Balances[paperex.Consumer].Items[paperex.Doc] == 1)
	fmt.Println("producer paid:", res.Balances[paperex.Producer].Cash)
	// Output:
	// completed: true
	// consumer has document: true
	// producer paid: $80
}

// ExampleRun_defection shows the unwind under a silent broker.
func ExampleRun_defection() {
	plan, err := core.Synthesize(paperex.Example1())
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(plan, sim.Options{
		Defectors: map[model.PartyID]int{paperex.Broker: 0},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Completed())
	fmt.Println("consumer refunded:", res.Balances[paperex.Consumer].Cash)
	// Output:
	// completed: false
	// consumer refunded: $100
}

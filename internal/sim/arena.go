package sim

import "trustseq/internal/model"

// This file holds the slab-style working-state containers the nodes
// use instead of per-node maps. A paper-scale run never notices the
// difference; a million-principal run does: every TrustedNode used to
// carry five maps and every PrincipalNode three, so map headers and
// first-insert buckets dominated memory per principal. The
// replacements are zero-value-ready (no allocation until first use),
// reset in place for crash wipes, and sized to the node's degree — a
// handful of entries for paper problems, ~2× fan-out for a
// population broker.

// actionSet is an open-addressing set of model.Action, hashed by
// FNV-1a over the action's fields and compared with ==. The zero value
// is an empty set.
type actionSet struct {
	keys []model.Action
	tab  []int32 // stores index+1 into keys; 0 = empty
}

// hashAction folds every Action field through FNV-1a; a 0xff separator
// between the string fields keeps ("ab","c") distinct from ("a","bc").
func hashAction(a model.Action) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(a.Kind)
	h *= prime
	for i := 0; i < len(a.From); i++ {
		h ^= uint64(a.From[i])
		h *= prime
	}
	h ^= 0xff
	h *= prime
	for i := 0; i < len(a.To); i++ {
		h ^= uint64(a.To[i])
		h *= prime
	}
	h ^= 0xff
	h *= prime
	for i := 0; i < len(a.Item); i++ {
		h ^= uint64(a.Item[i])
		h *= prime
	}
	h ^= 0xff
	h *= prime
	h ^= uint64(a.Amount)
	h *= prime
	if a.Inverse {
		h ^= 1
		h *= prime
	}
	return h
}

// add inserts a into the set; present elements are left alone.
func (s *actionSet) add(a model.Action) {
	if s.tab == nil {
		s.tab = make([]int32, 16)
	}
	mask := uint64(len(s.tab) - 1)
	for i := hashAction(a) & mask; ; i = (i + 1) & mask {
		e := s.tab[i]
		if e == 0 {
			s.keys = append(s.keys, a)
			s.tab[i] = int32(len(s.keys))
			if len(s.keys)*10 >= len(s.tab)*7 {
				s.grow()
			}
			return
		}
		if s.keys[e-1] == a {
			return
		}
	}
}

// has reports membership.
func (s *actionSet) has(a model.Action) bool {
	if s.tab == nil {
		return false
	}
	mask := uint64(len(s.tab) - 1)
	for i := hashAction(a) & mask; ; i = (i + 1) & mask {
		e := s.tab[i]
		if e == 0 {
			return false
		}
		if s.keys[e-1] == a {
			return true
		}
	}
}

func (s *actionSet) grow() {
	tab := make([]int32, len(s.tab)*2)
	mask := uint64(len(tab) - 1)
	for j, a := range s.keys {
		for i := hashAction(a) & mask; ; i = (i + 1) & mask {
			if tab[i] == 0 {
				tab[i] = int32(j) + 1
				break
			}
		}
	}
	s.tab = tab
}

// reset empties the set in place, keeping capacity — the crash wipe.
func (s *actionSet) reset() {
	s.keys = s.keys[:0]
	for i := range s.tab {
		s.tab[i] = 0
	}
}

// flagSet is a tiny index→bool association for per-exchange and
// per-offer flags. Keys are global exchange/offer indices, but a node
// only ever touches its own adjacent handful, so a linear-scanned pair
// of parallel slices beats both a map (allocation) and a dense slice
// (O(total exchanges) per node). The zero value is all-false.
type flagSet struct {
	idx []int32
	val []bool
}

// get reports the flag at index i, false when never set.
func (f *flagSet) get(i int) bool {
	for j, x := range f.idx {
		if x == int32(i) {
			return f.val[j]
		}
	}
	return false
}

// set assigns the flag at index i.
func (f *flagSet) set(i int, v bool) {
	for j, x := range f.idx {
		if x == int32(i) {
			f.val[j] = v
			return
		}
	}
	f.idx = append(f.idx, int32(i))
	f.val = append(f.val, v)
}

// reset clears every flag in place, keeping capacity.
func (f *flagSet) reset() {
	f.idx = f.idx[:0]
	f.val = f.val[:0]
}

package sim

import (
	"testing"

	"trustseq/internal/model"
)

// tickDelays cycles timers across wheel levels 0–2 so the steady-state
// allocation check exercises slot placement and cascading, not just the
// bottom level.
var tickDelays = []Time{1, 2, 9, 65, 513}

// tickNode re-arms a timer on every delivery, keeping exactly one event
// pending forever. Timers skip the trace, the ledger hooks, and
// telemetry, so each step is a pure schedule+deliver cycle.
type tickNode struct {
	id    model.PartyID
	count int
}

func (tn *tickNode) ID() model.PartyID { return tn.id }
func (tn *tickNode) Init(ctx *Context) { ctx.SetTimer(1, "tick") }
func (tn *tickNode) OnMessage(ctx *Context, m Message) {
	tn.count++
	ctx.SetTimer(tickDelays[tn.count%len(tickDelays)], "tick")
}

// Scheduling and delivering a message must not allocate at steady
// state, under both queue implementations: the wheel recycles bucket
// arrays through its freelist and the heap retains its backing array,
// while delivery reuses the network's scratch Context.
func TestScheduleDeliverZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind SchedulerKind
	}{
		{"wheel", SchedulerWheel},
		{"heap", SchedulerHeap},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := NewNetwork(Config{Seed: 1, MaxMessages: 1 << 30, Scheduler: tc.kind})
			node := &tickNode{id: "p"}
			net.AddNode(node)
			net.ctx.self = node.id
			node.Init(&net.ctx)
			// Warm the freelists and slice capacities.
			for i := 0; i < 4096; i++ {
				if more, err := net.step(); err != nil || !more {
					t.Fatalf("warmup step %d: more=%v err=%v", i, more, err)
				}
			}
			avg := testing.AllocsPerRun(10_000, func() {
				if more, err := net.step(); err != nil || !more {
					t.Fatalf("step: more=%v err=%v", more, err)
				}
			})
			if avg != 0 {
				t.Fatalf("schedule+deliver allocates %v allocs/op at steady state, want 0", avg)
			}
		})
	}
}

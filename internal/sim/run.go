package sim

import (
	"fmt"
	"sort"
	"strings"

	"trustseq/internal/core"
	"trustseq/internal/ledger"
	"trustseq/internal/model"
	"trustseq/internal/obs"
	"trustseq/internal/vlog"
)

// transitAccount holds in-flight assets between send and delivery.
const transitAccount = model.PartyID("__transit")

// Options configures a simulation run.
type Options struct {
	Seed        int64
	BaseLatency Time
	Jitter      Time
	// Scheduler selects the event-queue implementation (see
	// Config.Scheduler). The zero value is the timing wheel.
	Scheduler SchedulerKind
	// MaxMessages overrides the runaway-livelock guard. The default
	// scales with the problem: max(100_000, 256 × exchanges), so
	// population-scale runs are not cut off by the paper-scale guard.
	MaxMessages int
	// Deadline is the escrow expiry each trusted component enforces from
	// its first deposit. It must comfortably exceed the honest protocol's
	// span; the default (1000 ticks) does.
	Deadline Time
	// Defectors maps principals to the number of their own protocol steps
	// they perform before going silent. 0 is a fully silent defector.
	// Principals not in the map are honest. A defector also corrupts any
	// trusted component it plays as a persona.
	Defectors map[model.PartyID]int
	// NotifyDropRate injects control-plane message loss (see
	// Config.NotifyDropRate).
	NotifyDropRate float64
	// Faults composes the deterministic fault injectors — duplication,
	// bounded reordering, latency spikes, link partitions and
	// crash-restarts of trusted nodes. Nil injects nothing beyond
	// NotifyDropRate. The plan is validated against the problem.
	Faults *FaultPlan
	// NotifyRetries enables the notification retry layer: every notify
	// is re-sent up to that many extra times with exponential backoff
	// and jitter (see Config.NotifyRetries). RetryBase tunes the first
	// delay (default 8 ticks).
	NotifyRetries int
	RetryBase     Time
	// Obs receives a span per run, the per-message audit events and the
	// network counters (see Config.Obs). Nil disables; telemetry never
	// changes the simulated schedule.
	Obs *obs.Telemetry
	// Checkpoint, when set, makes Run snapshot the whole simulation to
	// Checkpoint.Path at the first event at or after Checkpoint.At and
	// then continue normally. RestoreRun resumes such a snapshot and
	// replays the remainder of the run tick-for-tick (see checkpoint.go).
	Checkpoint *CheckpointSpec
	// VLog builds the verifiable settlement log over the delivered
	// trace after quiescence (see internal/vlog): Result gains a
	// SettlementLog and SettlementRoot, and ReplayBalancesVerified
	// becomes available. The log is assembled from the trace the run
	// already records, so enabling it changes no schedule, verdict, or
	// trace byte.
	VLog bool
}

// Result is the outcome of a simulation.
type Result struct {
	Problem *model.Problem
	// State is the exchange state assembled from every delivered message.
	State model.State
	// Final per-party balances.
	Balances map[model.PartyID]*model.Holding
	// Messages delivered (excluding timers).
	Messages int
	// Duration is the virtual time at quiescence.
	Duration Time
	// Faults are protocol errors principals hit (unfundable steps).
	Faults []error
	// DuplicateActions counts actions delivered more than once (bounced
	// and re-sent transfers); they are recorded once in State.
	DuplicateActions int
	// DroppedNotifies counts control messages lost in transit.
	DroppedNotifies int
	// FaultStats counts what the fault plan actually injected.
	FaultStats FaultStats
	// Trace holds every delivered message in delivery order; render it
	// with RenderTrace.
	Trace []Message
	// SettlementLog is the verifiable log over Trace (one leaf per
	// entry, in order) and SettlementRoot its Merkle root in hex. Both
	// are set only when Options.VLog was on.
	SettlementLog  *vlog.Log
	SettlementRoot string
}

// Completed reports whether every exchange delivered in full.
func (r *Result) Completed() bool {
	for ei := range r.Problem.Exchanges {
		done := true
		for _, a := range model.ReceiptActions(r.Problem.Exchanges[ei]) {
			if !r.State.Has(a) || r.State.Has(a.Compensation()) {
				done = false
			}
		}
		if !done {
			return false
		}
	}
	return true
}

// AcceptableTo reports whether the final state satisfies the principal's
// full conjunction acceptability.
func (r *Result) AcceptableTo(id model.PartyID) bool {
	return model.Acceptable(r.Problem, id, r.State)
}

// AssetsSafeFor reports whether the final state preserves the
// principal's per-exchange asset integrity.
func (r *Result) AssetsSafeFor(id model.PartyID) bool {
	return model.AcceptableAssets(r.Problem, id, r.State)
}

// TrustedNeutral reports whether a trusted component ended holding
// nothing.
func (r *Result) TrustedNeutral(id model.PartyID) bool {
	h, ok := r.Balances[id]
	return ok && h.IsEmpty()
}

// Summary renders the run outcome.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%v messages=%d duration=%d faults=%d\n",
		r.Completed(), r.Messages, r.Duration, len(r.Faults))
	ids := make([]string, 0, len(r.Balances))
	for id := range r.Balances {
		if id == transitAccount {
			continue
		}
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "  %s: %v\n", id, r.Balances[model.PartyID(id)])
	}
	return b.String()
}

// runtime is one assembled simulation: the network, the ledger wired
// into its hooks, and the node roster. Run builds it and starts from
// scratch; RestoreRun builds the identical roster and then injects a
// checkpoint's state before entering the event loop.
type runtime struct {
	plan       *core.Plan
	opts       Options // normalized (defaults applied)
	p          *model.Problem
	net        *Network
	book       *ledger.Ledger
	trusted    []*TrustedNode
	principals []*PrincipalNode
}

// setupRun validates the plan and options and assembles the runtime:
// ledger, network, hooks, and every node, registered but not yet
// initialized.
func setupRun(plan *core.Plan, opts Options) (*runtime, error) {
	if !plan.Feasible {
		return nil, core.ErrInfeasible
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 1000
	}
	p := plan.Problem
	if err := opts.Faults.Validate(p); err != nil {
		return nil, err
	}
	if opts.MaxMessages <= 0 {
		opts.MaxMessages = 100_000
		if scaled := 256 * len(p.Exchanges); scaled > opts.MaxMessages {
			opts.MaxMessages = scaled
		}
	}

	initial := model.InitialHoldings(p)
	initial[transitAccount] = model.NewHolding()
	book := ledger.New(initial)

	net := NewNetwork(Config{
		Seed: opts.Seed, BaseLatency: opts.BaseLatency, Jitter: opts.Jitter,
		Scheduler: opts.Scheduler, MaxMessages: opts.MaxMessages,
		NotifyDropRate: opts.NotifyDropRate, Faults: opts.Faults,
		NotifyRetries: opts.NotifyRetries, RetryBase: opts.RetryBase, Obs: opts.Obs,
	})
	net.setHooks(
		func(m Message) error {
			return book.Transfer(m.Action.Mover(), transitAccount, m.Action.Asset(), m.Action.String())
		},
		func(m Message) error {
			if m.Kind != MsgTransfer {
				return nil
			}
			return book.Transfer(transitAccount, m.Action.Receiver(), m.Action.Asset(), m.Action.String())
		},
	)

	rs := &runtime{plan: plan, opts: opts, p: p, net: net, book: book}
	for _, pa := range p.Parties {
		if !pa.IsTrusted() {
			continue
		}
		honest := true
		if q, ok := p.PersonaOf(pa.ID); ok {
			if _, defects := opts.Defectors[q]; defects {
				honest = false
			}
		}
		tn := NewTrustedNode(p, pa.ID, opts.Deadline, honest)
		rs.trusted = append(rs.trusted, tn)
		net.AddNode(tn)
	}
	rs.principals = BuildPrincipalNodes(plan, opts.Defectors)
	for _, node := range rs.principals {
		net.AddNode(node)
	}
	return rs, nil
}

// assemble builds the Result after the event loop has quiesced.
func (rs *runtime) assemble() (*Result, error) {
	p := rs.p
	res := &Result{
		Problem:         p,
		State:           model.NewState(),
		Balances:        make(map[model.PartyID]*model.Holding, len(p.Parties)),
		Duration:        rs.net.Now(),
		DroppedNotifies: rs.net.dropped,
	}
	res.Trace = rs.net.trace
	res.FaultStats = rs.net.fstats
	if rs.opts.VLog {
		res.SettlementLog = SettlementLog(res.Trace)
		res.SettlementRoot = res.SettlementLog.Root().String()
	}
	for _, m := range res.Trace {
		if m.Kind == MsgCrash || m.Kind == MsgRestart {
			continue // fault events are not deliveries
		}
		res.Messages++
		if m.Tag != "" {
			continue // control messages are not exchange actions
		}
		if err := res.State.Add(m.Action); err != nil {
			res.DuplicateActions++
		}
	}
	for _, pa := range p.Parties {
		res.Balances[pa.ID] = rs.book.Balance(pa.ID)
	}
	res.Balances[transitAccount] = rs.book.Balance(transitAccount)
	if !res.Balances[transitAccount].IsEmpty() {
		return nil, fmt.Errorf("sim: assets stuck in transit: %v", res.Balances[transitAccount])
	}
	if err := rs.book.Audit(); err != nil {
		return nil, err
	}
	for _, node := range rs.principals {
		res.Faults = append(res.Faults, node.Faults()...)
	}
	return res, nil
}

// Run executes a synthesized plan on the simulated network. The plan
// must be feasible.
func Run(plan *core.Plan, opts Options) (*Result, error) {
	rs, err := setupRun(plan, opts)
	if err != nil {
		return nil, err
	}
	tel := rs.opts.Obs
	var span obs.Span
	if tel.Enabled() {
		span = tel.Trace().StartSpan("sim.run",
			obs.Str("problem", rs.p.Name),
			obs.Int64("seed", opts.Seed),
			obs.Int("defectors", len(opts.Defectors)),
			obs.Bool("faults", opts.Faults.Enabled()))
	}
	if rs.opts.Checkpoint != nil {
		rs.armCheckpoint()
	}

	if err := rs.net.Run(); err != nil {
		if tel.Enabled() {
			span.End(obs.Str("error", err.Error()))
		}
		return nil, err
	}
	res, err := rs.assemble()
	if err != nil {
		if tel.Enabled() {
			span.End(obs.Str("error", err.Error()))
		}
		return nil, err
	}
	if tel.Enabled() {
		tel.Reg().Counter("sim.runs").Inc()
		span.End(
			obs.Bool("completed", res.Completed()),
			obs.Int("messages", res.Messages),
			obs.Int64("duration_ticks", int64(res.Duration)),
			obs.Int("faults", len(res.Faults)),
			obs.Int("dropped", res.DroppedNotifies),
			obs.Int("crashes", res.FaultStats.Crashes))
	}
	return res, nil
}

package sim

import (
	"fmt"
	"sort"
	"strings"

	"trustseq/internal/core"
	"trustseq/internal/ledger"
	"trustseq/internal/model"
	"trustseq/internal/obs"
)

// transitAccount holds in-flight assets between send and delivery.
const transitAccount = model.PartyID("__transit")

// Options configures a simulation run.
type Options struct {
	Seed        int64
	BaseLatency Time
	Jitter      Time
	// Deadline is the escrow expiry each trusted component enforces from
	// its first deposit. It must comfortably exceed the honest protocol's
	// span; the default (1000 ticks) does.
	Deadline Time
	// Defectors maps principals to the number of their own protocol steps
	// they perform before going silent. 0 is a fully silent defector.
	// Principals not in the map are honest. A defector also corrupts any
	// trusted component it plays as a persona.
	Defectors map[model.PartyID]int
	// NotifyDropRate injects control-plane message loss (see
	// Config.NotifyDropRate).
	NotifyDropRate float64
	// Faults composes the deterministic fault injectors — duplication,
	// bounded reordering, latency spikes, link partitions and
	// crash-restarts of trusted nodes. Nil injects nothing beyond
	// NotifyDropRate. The plan is validated against the problem.
	Faults *FaultPlan
	// NotifyRetries enables the notification retry layer: every notify
	// is re-sent up to that many extra times with exponential backoff
	// and jitter (see Config.NotifyRetries). RetryBase tunes the first
	// delay (default 8 ticks).
	NotifyRetries int
	RetryBase     Time
	// Obs receives a span per run, the per-message audit events and the
	// network counters (see Config.Obs). Nil disables; telemetry never
	// changes the simulated schedule.
	Obs *obs.Telemetry
}

// Result is the outcome of a simulation.
type Result struct {
	Problem *model.Problem
	// State is the exchange state assembled from every delivered message.
	State model.State
	// Final per-party balances.
	Balances map[model.PartyID]*model.Holding
	// Messages delivered (excluding timers).
	Messages int
	// Duration is the virtual time at quiescence.
	Duration Time
	// Faults are protocol errors principals hit (unfundable steps).
	Faults []error
	// DuplicateActions counts actions delivered more than once (bounced
	// and re-sent transfers); they are recorded once in State.
	DuplicateActions int
	// DroppedNotifies counts control messages lost in transit.
	DroppedNotifies int
	// FaultStats counts what the fault plan actually injected.
	FaultStats FaultStats
	// Trace holds every delivered message in delivery order; render it
	// with RenderTrace.
	Trace []Message
}

// Completed reports whether every exchange delivered in full.
func (r *Result) Completed() bool {
	for ei := range r.Problem.Exchanges {
		done := true
		for _, a := range model.ReceiptActions(r.Problem.Exchanges[ei]) {
			if !r.State.Has(a) || r.State.Has(a.Compensation()) {
				done = false
			}
		}
		if !done {
			return false
		}
	}
	return true
}

// AcceptableTo reports whether the final state satisfies the principal's
// full conjunction acceptability.
func (r *Result) AcceptableTo(id model.PartyID) bool {
	return model.Acceptable(r.Problem, id, r.State)
}

// AssetsSafeFor reports whether the final state preserves the
// principal's per-exchange asset integrity.
func (r *Result) AssetsSafeFor(id model.PartyID) bool {
	return model.AcceptableAssets(r.Problem, id, r.State)
}

// TrustedNeutral reports whether a trusted component ended holding
// nothing.
func (r *Result) TrustedNeutral(id model.PartyID) bool {
	h, ok := r.Balances[id]
	return ok && h.IsEmpty()
}

// Summary renders the run outcome.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%v messages=%d duration=%d faults=%d\n",
		r.Completed(), r.Messages, r.Duration, len(r.Faults))
	ids := make([]string, 0, len(r.Balances))
	for id := range r.Balances {
		if id == transitAccount {
			continue
		}
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "  %s: %v\n", id, r.Balances[model.PartyID(id)])
	}
	return b.String()
}

// Run executes a synthesized plan on the simulated network. The plan
// must be feasible.
func Run(plan *core.Plan, opts Options) (*Result, error) {
	if !plan.Feasible {
		return nil, core.ErrInfeasible
	}
	if opts.Deadline <= 0 {
		opts.Deadline = 1000
	}
	p := plan.Problem
	if err := opts.Faults.Validate(p); err != nil {
		return nil, err
	}

	initial := model.InitialHoldings(p)
	initial[transitAccount] = model.NewHolding()
	book := ledger.New(initial)

	tel := opts.Obs
	var span obs.Span
	if tel.Enabled() {
		span = tel.Trace().StartSpan("sim.run",
			obs.Str("problem", p.Name),
			obs.Int64("seed", opts.Seed),
			obs.Int("defectors", len(opts.Defectors)),
			obs.Bool("faults", opts.Faults.Enabled()))
	}

	net := NewNetwork(Config{
		Seed: opts.Seed, BaseLatency: opts.BaseLatency, Jitter: opts.Jitter,
		NotifyDropRate: opts.NotifyDropRate, Faults: opts.Faults,
		NotifyRetries: opts.NotifyRetries, RetryBase: opts.RetryBase, Obs: tel,
	})
	net.SetHooks(
		func(m Message) error {
			return book.Transfer(m.Action.Mover(), transitAccount, m.Action.Asset(), m.Action.String())
		},
		func(m Message) error {
			if m.Kind != MsgTransfer {
				return nil
			}
			return book.Transfer(transitAccount, m.Action.Receiver(), m.Action.Asset(), m.Action.String())
		},
	)

	var principals []*PrincipalNode
	for _, pa := range p.Parties {
		if pa.IsTrusted() {
			honest := true
			if q, ok := p.PersonaOf(pa.ID); ok {
				if _, defects := opts.Defectors[q]; defects {
					honest = false
				}
			}
			net.AddNode(NewTrustedNode(p, pa.ID, opts.Deadline, honest))
			continue
		}
		stopAfter := -1
		if k, ok := opts.Defectors[pa.ID]; ok {
			stopAfter = k
		}
		node := NewPrincipalNode(plan, pa.ID, stopAfter)
		principals = append(principals, node)
		net.AddNode(node)
	}

	if err := net.Run(); err != nil {
		if tel.Enabled() {
			span.End(obs.Str("error", err.Error()))
		}
		return nil, err
	}

	res := &Result{
		Problem:         p,
		State:           model.NewState(),
		Balances:        make(map[model.PartyID]*model.Holding, len(p.Parties)),
		Duration:        net.Now(),
		DroppedNotifies: net.Dropped(),
	}
	res.Trace = net.Trace()
	res.FaultStats = net.FaultStats()
	for _, m := range res.Trace {
		if m.Kind == MsgCrash || m.Kind == MsgRestart {
			continue // fault events are not deliveries
		}
		res.Messages++
		if m.Tag != "" {
			continue // control messages are not exchange actions
		}
		if err := res.State.Add(m.Action); err != nil {
			res.DuplicateActions++
		}
	}
	for _, pa := range p.Parties {
		res.Balances[pa.ID] = book.Balance(pa.ID)
	}
	res.Balances[transitAccount] = book.Balance(transitAccount)
	if !res.Balances[transitAccount].IsEmpty() {
		return nil, fmt.Errorf("sim: assets stuck in transit: %v", res.Balances[transitAccount])
	}
	if err := book.Audit(); err != nil {
		return nil, err
	}
	for _, node := range principals {
		res.Faults = append(res.Faults, node.Faults()...)
	}
	if tel.Enabled() {
		tel.Reg().Counter("sim.runs").Inc()
		span.End(
			obs.Bool("completed", res.Completed()),
			obs.Int("messages", res.Messages),
			obs.Int64("duration_ticks", int64(res.Duration)),
			obs.Int("faults", len(res.Faults)),
			obs.Int("dropped", res.DroppedNotifies),
			obs.Int("crashes", res.FaultStats.Crashes))
	}
	return res, nil
}

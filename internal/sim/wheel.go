package sim

import (
	"math/bits"
	"slices"
)

// This file holds the simulator's event queues. The default is a
// hierarchical timing wheel — O(1) schedule and amortized O(1) fire —
// and a binary heap is kept alongside it as the oracle for the
// heap-vs-wheel equivalence property test. Both implementations pop in
// exactly the total order (At, seq): At is the virtual delivery tick
// and seq the global scheduling sequence number, so equal-tick events
// fire in FIFO order. Because that order is total, any two correct
// queues produce byte-identical traces.

// msgLess is the scheduling order: delivery tick, then FIFO sequence.
func msgLess(a, b Message) bool {
	return a.At < b.At || (a.At == b.At && a.seq < b.seq)
}

// eventQueue is the scheduler behind Network. push accepts a message
// whose seq is already assigned; pop returns events in (At, seq) order.
// pending snapshots every queued event in pop order without consuming
// it — the checkpoint writer uses it.
type eventQueue interface {
	push(m Message)
	pop() (Message, bool)
	len() int
	pending() []Message
}

// SchedulerKind selects the event-queue implementation.
type SchedulerKind int

// Scheduler kinds. The timing wheel is the zero value and the default;
// the binary heap is retained as the test oracle and for A/B
// benchmarking.
const (
	SchedulerWheel SchedulerKind = iota
	SchedulerHeap
)

// String names the scheduler.
func (k SchedulerKind) String() string {
	if k == SchedulerHeap {
		return "heap"
	}
	return "wheel"
}

const (
	wheelBits     = 6
	wheelSlots    = 1 << wheelBits // 64 slots per level
	wheelMask     = wheelSlots - 1
	wheelLevels   = 4
	wheelSpanBits = wheelBits * wheelLevels // the wheel covers 2^24 ticks
)

// wheelQueue is a hierarchical timing wheel over virtual time:
// wheelLevels levels of wheelSlots buckets, where level l buckets
// events by the l-th 6-bit digit of their delivery tick.
//
// Placement is by digit, not by delta: an event lands at the most
// significant digit position where its tick differs from the wheel's
// current time (`now`). That choice carries the invariants the
// correctness argument rests on:
//
//   - every event in a level-l bucket shares all digits above l with
//     now, and its digit at l is strictly greater than now's (no bucket
//     ever mixes the current lap with the next), so
//   - the lowest occupied level always contains the globally next
//     event, found by one TrailingZeros64 over the level's occupancy
//     bitmap, and
//   - cascading a level-l bucket after advancing now to the bucket's
//     window start re-inserts every event at a strictly lower level —
//     progress is guaranteed, and each event cascades at most
//     wheelLevels-1 times.
//
// Events beyond the wheel's 2^24-tick span wait in an overflow list;
// they are provably later than everything in the wheel, so they
// migrate only when the wheel drains. Firing copies a whole level-0
// bucket into the batch buffer and sorts it by (At, seq) — a bucket is
// almost always a single tick, so the sort is the FIFO tie-break, and
// same-tick events scheduled during the firing batch are spliced into
// it to preserve the global order.
//
// Every bucket's backing array stays resident in its slot: draining or
// cascading reslices it to length zero instead of releasing it, so
// each array grows once to its workload's high-water mark and
// steady-state schedule+fire allocates nothing. The stale entries
// between a drained bucket's length and capacity pin their party-ID
// and tag strings until the slot refills, but those strings are alive
// in the plan anyway, so the retention is free.
type wheelQueue struct {
	now   Time
	slots [wheelLevels][wheelSlots][]Message
	occ   [wheelLevels]uint64 // per-level bucket occupancy bitmaps
	count int                 // events in buckets + overflow, excluding the batch

	overflow    []Message
	overflowMin Time

	// The active firing batch: a persistent buffer holding a copy of
	// the drained level-0 bucket, sorted.
	batch     []Message
	batchIdx  int
	batchTime Time
	firing    bool
}

func newWheelQueue() *wheelQueue { return &wheelQueue{} }

func (w *wheelQueue) len() int { return w.count + len(w.batch) - w.batchIdx }

func (w *wheelQueue) push(m Message) {
	if w.firing && m.At <= w.batchTime {
		w.spliceBatch(m)
		return
	}
	w.insert(&m)
}

// insert buckets one event relative to the wheel's current time. It
// takes a pointer so the ~100-byte Message is copied once, at the
// bucket append, rather than at every hop of the call chain.
func (w *wheelQueue) insert(m *Message) {
	w.count++
	at := m.At
	if at <= w.now {
		// Late (or exactly-now) events clamp into the current bucket;
		// the batch sort orders them correctly by their original At.
		w.place(0, int(w.now)&wheelMask, m)
		return
	}
	if at>>wheelSpanBits != w.now>>wheelSpanBits {
		if len(w.overflow) == 0 || at < w.overflowMin {
			w.overflowMin = at
		}
		w.overflow = append(w.overflow, *m)
		return
	}
	diff := uint64(at ^ w.now)
	level := (63 - bits.LeadingZeros64(diff)) / wheelBits
	slot := int(at>>(uint(level)*wheelBits)) & wheelMask
	w.place(level, slot, m)
}

func (w *wheelQueue) place(level, slot int, m *Message) {
	w.slots[level][slot] = append(w.slots[level][slot], *m)
	w.occ[level] |= 1 << uint(slot)
}

// spliceBatch inserts a same-tick event scheduled mid-firing into the
// unconsumed tail of the active batch, keeping (At, seq) order. New
// events carry the largest seq so far, so the common case is a plain
// append.
func (w *wheelQueue) spliceBatch(m Message) {
	i := len(w.batch)
	for i > w.batchIdx && msgLess(m, w.batch[i-1]) {
		i--
	}
	w.batch = append(w.batch, Message{})
	copy(w.batch[i+1:], w.batch[i:])
	w.batch[i] = m
}

func (w *wheelQueue) pop() (Message, bool) {
	if w.batchIdx < len(w.batch) {
		m := w.batch[w.batchIdx]
		w.batchIdx++
		return m, true
	}
	w.batch = w.batch[:0]
	w.batchIdx = 0
	w.firing = false
	for {
		if w.count == 0 {
			return Message{}, false
		}
		level := -1
		for l := 0; l < wheelLevels; l++ {
			if w.occ[l] != 0 {
				level = l
				break
			}
		}
		if level < 0 {
			w.migrateOverflow()
			continue
		}
		slot := bits.TrailingZeros64(w.occ[level])
		events := w.slots[level][slot]
		w.occ[level] &^= 1 << uint(slot)
		w.count -= len(events)
		if level == 0 {
			w.now = (w.now &^ wheelMask) | Time(slot)
			w.batch = append(w.batch[:0], events...)
			w.slots[0][slot] = events[:0]
			slices.SortFunc(w.batch, func(a, b Message) int {
				if a.At != b.At {
					return int(a.At - b.At)
				}
				return a.seq - b.seq
			})
			w.batchIdx = 1
			w.batchTime = w.now
			w.firing = true
			return w.batch[0], true
		}
		// Cascade: advance now to the bucket's window start and
		// re-insert; every event lands at a strictly lower level, so
		// none of the inserts can touch the bucket being ranged.
		shift := uint(level) * wheelBits
		windowMask := Time(1)<<(shift+wheelBits) - 1
		w.now = (w.now &^ windowMask) | Time(slot)<<shift
		for i := range events {
			w.insert(&events[i])
		}
		w.slots[level][slot] = events[:0]
	}
}

// migrateOverflow jumps the wheel to the earliest overflow event —
// every overflow event is strictly later than everything the (now
// empty) wheel held — and re-buckets whatever now fits in the span.
func (w *wheelQueue) migrateOverflow() {
	waiting := w.overflow
	w.now = w.overflowMin
	w.overflow = nil
	w.overflowMin = 0
	w.count -= len(waiting)
	for i := range waiting {
		w.insert(&waiting[i])
	}
}

func (w *wheelQueue) pending() []Message {
	out := make([]Message, 0, w.len())
	out = append(out, w.batch[w.batchIdx:]...)
	for l := range w.slots {
		for s := range w.slots[l] {
			out = append(out, w.slots[l][s]...)
		}
	}
	out = append(out, w.overflow...)
	slices.SortFunc(out, func(a, b Message) int {
		if a.At != b.At {
			return int(a.At - b.At)
		}
		return a.seq - b.seq
	})
	return out
}

// heapQueue is a plain binary min-heap on (At, seq). It exists as the
// oracle the wheel is property-tested against and as the baseline side
// of the scheduler benchmarks; container/heap is avoided so neither
// queue pays interface boxing on the hot path.
type heapQueue struct {
	h []Message
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) push(m Message) {
	q.h = append(q.h, m)
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !msgLess(q.h[i], q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *heapQueue) pop() (Message, bool) {
	if len(q.h) == 0 {
		return Message{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = Message{}
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.h) && msgLess(q.h[l], q.h[min]) {
			min = l
		}
		if r < len(q.h) && msgLess(q.h[r], q.h[min]) {
			min = r
		}
		if min == i {
			break
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
	return top, true
}

func (q *heapQueue) pending() []Message {
	out := append([]Message(nil), q.h...)
	slices.SortFunc(out, func(a, b Message) int {
		if a.At != b.At {
			return int(a.At - b.At)
		}
		return a.seq - b.seq
	})
	return out
}

// newQueue builds the configured scheduler.
func newQueue(kind SchedulerKind) eventQueue {
	if kind == SchedulerHeap {
		return newHeapQueue()
	}
	return newWheelQueue()
}

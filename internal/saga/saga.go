package saga

import (
	"errors"
	"fmt"
)

// Step is one forward action with its compensation.
type Step struct {
	Name       string
	Forward    func() error
	Compensate func() error
}

// Outcome reports a saga execution.
type Outcome struct {
	// Completed is the number of steps that ran forward successfully.
	Completed int
	// Compensated is the number of compensations that succeeded during
	// rollback.
	Compensated int
	// ForwardErr is the error that stopped forward progress, if any.
	ForwardErr error
	// CompensationErrs records compensations that themselves failed —
	// the stuck states a saga cannot repair.
	CompensationErrs []error
}

// Succeeded reports full forward completion.
func (o Outcome) Succeeded() bool { return o.ForwardErr == nil }

// CleanlyRolledBack reports a failure that was fully compensated.
func (o Outcome) CleanlyRolledBack() bool {
	return o.ForwardErr != nil && len(o.CompensationErrs) == 0
}

// String renders the outcome.
func (o Outcome) String() string {
	switch {
	case o.Succeeded():
		return fmt.Sprintf("saga completed (%d steps)", o.Completed)
	case o.CleanlyRolledBack():
		return fmt.Sprintf("saga failed at step %d, fully compensated", o.Completed)
	default:
		return fmt.Sprintf("saga failed at step %d with %d stuck compensations",
			o.Completed, len(o.CompensationErrs))
	}
}

// Run executes the saga: forward until a step fails, then compensate the
// completed prefix in reverse (LIFO) order.
func Run(steps []Step) Outcome {
	var out Outcome
	for i, st := range steps {
		if st.Forward == nil {
			out.ForwardErr = fmt.Errorf("saga: step %d (%s) has no forward action", i, st.Name)
			break
		}
		if err := st.Forward(); err != nil {
			out.ForwardErr = fmt.Errorf("saga: step %d (%s): %w", i, st.Name, err)
			break
		}
		out.Completed++
	}
	if out.ForwardErr == nil {
		return out
	}
	for i := out.Completed - 1; i >= 0; i-- {
		st := steps[i]
		if st.Compensate == nil {
			continue
		}
		if err := st.Compensate(); err != nil {
			out.CompensationErrs = append(out.CompensationErrs,
				fmt.Errorf("saga: compensating step %d (%s): %w", i, st.Name, err))
			continue
		}
		out.Compensated++
	}
	return out
}

// ErrRefused is returned by steps standing in for a party that refuses
// to act (forward or compensating) — the defection the paper's trusted
// intermediaries are introduced to contain.
var ErrRefused = errors.New("saga: party refuses to act")

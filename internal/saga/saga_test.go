package saga

import (
	"errors"
	"strings"
	"testing"

	"trustseq/internal/ledger"
	"trustseq/internal/model"
	"trustseq/internal/paperex"
)

func TestRunAllForward(t *testing.T) {
	t.Parallel()
	var log []string
	mk := func(name string) Step {
		return Step{
			Name:       name,
			Forward:    func() error { log = append(log, name); return nil },
			Compensate: func() error { log = append(log, "undo-"+name); return nil },
		}
	}
	out := Run([]Step{mk("a"), mk("b"), mk("c")})
	if !out.Succeeded() || out.Completed != 3 {
		t.Fatalf("outcome = %+v", out)
	}
	if strings.Join(log, ",") != "a,b,c" {
		t.Fatalf("log = %v", log)
	}
}

func TestRunCompensatesInReverse(t *testing.T) {
	t.Parallel()
	var log []string
	mk := func(name string, fail bool) Step {
		return Step{
			Name: name,
			Forward: func() error {
				if fail {
					return ErrRefused
				}
				log = append(log, name)
				return nil
			},
			Compensate: func() error { log = append(log, "undo-"+name); return nil },
		}
	}
	out := Run([]Step{mk("a", false), mk("b", false), mk("c", true)})
	if out.Succeeded() {
		t.Fatalf("saga succeeded through a refused step")
	}
	if !out.CleanlyRolledBack() || out.Compensated != 2 {
		t.Fatalf("outcome = %+v", out)
	}
	if strings.Join(log, ",") != "a,b,undo-b,undo-a" {
		t.Fatalf("log = %v (LIFO compensation expected)", log)
	}
	if !errors.Is(out.ForwardErr, ErrRefused) {
		t.Fatalf("ForwardErr = %v", out.ForwardErr)
	}
}

func TestRunStuckCompensation(t *testing.T) {
	t.Parallel()
	steps := []Step{
		{
			Name:       "pay",
			Forward:    func() error { return nil },
			Compensate: func() error { return ErrRefused }, // holder won't give it back
		},
		{
			Name:    "deliver",
			Forward: func() error { return ErrRefused },
		},
	}
	out := Run(steps)
	if out.CleanlyRolledBack() {
		t.Fatalf("rollback reported clean despite refusal")
	}
	if len(out.CompensationErrs) != 1 {
		t.Fatalf("compensation errors = %v", out.CompensationErrs)
	}
	if !strings.Contains(out.String(), "stuck") {
		t.Errorf("String = %q", out.String())
	}
}

func TestRunNilForward(t *testing.T) {
	t.Parallel()
	out := Run([]Step{{Name: "broken"}})
	if out.Succeeded() || out.Completed != 0 {
		t.Fatalf("outcome = %+v", out)
	}
}

// E12, saga half: an Example 1 exchange expressed as a saga of direct
// transfers. With cooperative parties, failure mid-way rolls back
// cleanly. With a defecting customer who refuses to return the document,
// compensation is stuck — the saga model presumes cooperation that the
// paper's setting does not grant.
func TestExchangeSagaCooperativeVsDefecting(t *testing.T) {
	t.Parallel()
	build := func(customerReturns bool, producerDelivers bool) Outcome {
		p := paperex.Example1()
		book := ledger.ForProblem(p)
		steps := []Step{
			{
				Name:       "producer ships to broker",
				Forward:    func() error { return book.Transfer("p", "b", model.Goods("d"), "ship") },
				Compensate: func() error { return book.Transfer("b", "p", model.Goods("d"), "return") },
			},
			{
				Name:    "broker ships to consumer",
				Forward: func() error { return book.Transfer("b", "c", model.Goods("d"), "ship") },
				Compensate: func() error {
					if !customerReturns {
						return ErrRefused
					}
					return book.Transfer("c", "b", model.Goods("d"), "return")
				},
			},
			{
				Name: "consumer pays broker",
				Forward: func() error {
					return book.Transfer("c", "b", model.Cash(paperex.RetailPrice), "pay")
				},
				Compensate: func() error {
					return book.Transfer("b", "c", model.Cash(paperex.RetailPrice), "refund")
				},
			},
			{
				Name: "broker pays producer",
				Forward: func() error {
					if !producerDelivers {
						return ErrRefused // stand-in for a late failure
					}
					return book.Transfer("b", "p", model.Cash(paperex.WholesalePrice), "pay")
				},
			},
		}
		return Run(steps)
	}

	// Cooperative rollback: late failure, everything compensates.
	out := build(true, false)
	if !out.CleanlyRolledBack() {
		t.Fatalf("cooperative rollback not clean: %+v", out)
	}
	// Defecting customer: the document cannot be recovered.
	out = build(false, false)
	if out.CleanlyRolledBack() {
		t.Fatalf("rollback clean despite the customer keeping the document")
	}
	// Full success path.
	out = build(true, true)
	if !out.Succeeded() || out.Completed != 4 {
		t.Fatalf("success path = %+v", out)
	}
}

// Package saga is the Section 7.2 baseline: a saga is a sequence of
// steps that yields an acceptable final state when executed; on failure,
// completed steps are compensated in reverse order. The paper's state
// representation was motivated by sagas — "what we propose here is for
// each agent to have its own set of acceptable sagas". This package
// provides a generic saga executor plus an exchange adapter, so the
// difference from the trust protocol is measurable: saga compensation
// presumes every holder cooperates in giving assets back, which is
// exactly what a defecting counterparty refuses.
//
// # Key types
//
//   - Step pairs a forward action with its compensation, either of which
//     may fail; Run executes the sequence and, on failure, the
//     compensations in reverse.
//   - Outcome reports how far execution got (Completed), how much of the
//     rollback succeeded (Compensated), the error that stopped forward
//     progress, and CompensationErrs — the stuck states a saga cannot
//     repair, which the exchange adapter compares against the trust
//     protocol's zero-loss guarantee.
//
// # Concurrency and ownership
//
// Run executes steps strictly in order on the calling goroutine; any
// shared state lives inside the caller's Step closures, which therefore
// carry the synchronization burden if they touch shared data. The
// package itself holds no state and Outcome is plain data.
package saga

package dsl

import (
	"fmt"
	"sort"
	"strings"

	"trustseq/internal/model"
)

// Compile performs semantic analysis on a parsed file and builds the
// model problem. The returned problem is already validated.
func Compile(f *File) (*model.Problem, error) {
	p := &model.Problem{Name: f.Name}
	declared := make(map[string]model.Role)
	endowed := make(map[string]bool)

	addParty := func(st PartyStmt) error {
		if _, ok := declared[st.Name]; ok {
			return errf(st.Pos, "party %q already declared", st.Name)
		}
		declared[st.Name] = st.Role
		p.Parties = append(p.Parties, model.Party{ID: model.PartyID(st.Name), Role: st.Role})
		return nil
	}
	partyIdx := func(name string) int {
		for i := range p.Parties {
			if p.Parties[i].ID == model.PartyID(name) {
				return i
			}
		}
		return -1
	}
	requireRole := func(pos Pos, name string, wantTrusted bool) error {
		role, ok := declared[name]
		if !ok {
			return errf(pos, "undeclared party %q", name)
		}
		if wantTrusted && role != model.RoleTrusted {
			return errf(pos, "%q is a %s, expected a trusted component", name, role)
		}
		if !wantTrusted && role == model.RoleTrusted {
			return errf(pos, "%q is a trusted component, expected a principal", name)
		}
		return nil
	}
	// exchangeAt finds the model exchange index for (principal, trusted).
	exchangeAt := func(principal, via string) int {
		for i, e := range p.Exchanges {
			if e.Principal == model.PartyID(principal) && e.Trusted == model.PartyID(via) {
				return i
			}
		}
		return -1
	}

	for _, raw := range f.Stmts {
		switch st := raw.(type) {
		case PartyStmt:
			if err := addParty(st); err != nil {
				return nil, err
			}

		case EndowmentStmt:
			if err := requireRole(st.Pos, st.Party, false); err != nil {
				return nil, err
			}
			if endowed[st.Party] {
				return nil, errf(st.Pos, "duplicate endowment for %q", st.Party)
			}
			endowed[st.Party] = true
			i := partyIdx(st.Party)
			p.Parties[i].LimitedFunds = true
			p.Parties[i].Endowment = st.Amount

		case ExchangeStmt:
			if err := requireRole(st.Pos, st.A, false); err != nil {
				return nil, err
			}
			if err := requireRole(st.Pos, st.B, false); err != nil {
				return nil, err
			}
			if err := requireRole(st.Pos, st.Via, true); err != nil {
				return nil, err
			}
			if st.A == st.B {
				return nil, errf(st.Pos, "exchange between %q and itself", st.A)
			}
			if len(st.Clauses) == 0 || len(st.Clauses) > 2 {
				return nil, errf(st.Pos, "exchange needs 1 or 2 'gives' clauses, found %d", len(st.Clauses))
			}
			bundles := map[string]model.Bundle{
				st.A: {},
				st.B: {},
			}
			seen := make(map[string]bool, 2)
			for _, cl := range st.Clauses {
				if cl.Party != st.A && cl.Party != st.B {
					return nil, errf(cl.Pos, "%q is not a party of this exchange (%s, %s)", cl.Party, st.A, st.B)
				}
				if seen[cl.Party] {
					return nil, errf(cl.Pos, "duplicate 'gives' clause for %q", cl.Party)
				}
				seen[cl.Party] = true
				bundles[cl.Party] = cl.Bundle.Bundle()
			}
			if exchangeAt(st.A, st.Via) >= 0 || exchangeAt(st.B, st.Via) >= 0 {
				return nil, errf(st.Pos, "a party already has an exchange via %q; use a distinct intermediary", st.Via)
			}
			p.Exchanges = append(p.Exchanges,
				model.Exchange{
					Principal: model.PartyID(st.A), Trusted: model.PartyID(st.Via),
					Gives: bundles[st.A], Gets: bundles[st.B],
				},
				model.Exchange{
					Principal: model.PartyID(st.B), Trusted: model.PartyID(st.Via),
					Gives: bundles[st.B], Gets: bundles[st.A],
				},
			)

		case TrustStmt:
			if err := requireRole(st.Pos, st.Truster, false); err != nil {
				return nil, err
			}
			if err := requireRole(st.Pos, st.Trustee, false); err != nil {
				return nil, err
			}
			if st.Truster == st.Trustee {
				return nil, errf(st.Pos, "%q cannot trust itself", st.Truster)
			}
			p.DirectTrust = append(p.DirectTrust, model.TrustDecl{
				Truster: model.PartyID(st.Truster),
				Trustee: model.PartyID(st.Trustee),
			})

		case RedStmt:
			if err := requireRole(st.Pos, st.Party, false); err != nil {
				return nil, err
			}
			if err := requireRole(st.Pos, st.Via, true); err != nil {
				return nil, err
			}
			ei := exchangeAt(st.Party, st.Via)
			if ei < 0 {
				return nil, errf(st.Pos, "no exchange of %q via %q (declare the exchange first)", st.Party, st.Via)
			}
			p.Exchanges[ei].RedOverride = true

		case IndemnifyStmt:
			if err := requireRole(st.Pos, st.By, false); err != nil {
				return nil, err
			}
			if err := requireRole(st.Pos, st.Protected, false); err != nil {
				return nil, err
			}
			if err := requireRole(st.Pos, st.Via, true); err != nil {
				return nil, err
			}
			ei := exchangeAt(st.Protected, st.Via)
			if ei < 0 {
				return nil, errf(st.Pos, "no exchange of %q via %q to cover", st.Protected, st.Via)
			}
			p.Indemnities = append(p.Indemnities, model.IndemnityOffer{
				By:     model.PartyID(st.By),
				Covers: ei,
				Via:    model.PartyID(st.Via),
				Amount: st.Amount,
			})

		case RequireStmt:
			for _, ae := range []ActionExpr{st.Before, st.After} {
				for _, end := range []string{ae.From, ae.To} {
					if _, ok := declared[end]; !ok {
						return nil, errf(ae.Pos, "undeclared party %q in constraint", end)
					}
				}
				if err := ae.Action().Validate(); err != nil {
					return nil, errf(ae.Pos, "invalid constraint action: %v", err)
				}
			}
			p.Constraints = append(p.Constraints, model.Constraint{
				Before: st.Before.Action(),
				After:  st.After.Action(),
			})

		default:
			return nil, errf(raw.Position(), "internal: unknown statement type %T", raw)
		}
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dsl: %s: %w", f.Name, err)
	}
	return p, nil
}

// Load parses and compiles DSL source in one step.
func Load(src string) (*model.Problem, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

// Print renders a problem back into DSL source. It requires every
// trusted component to mediate exactly two exchanges (the paper's
// pairwise model); Section 8's universal-intermediary constructions are
// not expressible as exchange statements.
func Print(p *model.Problem) (string, error) {
	for _, pa := range p.Parties {
		if !pa.IsTrusted() {
			continue
		}
		if n := len(p.ExchangesOf(pa.ID)); n != 2 {
			return "", fmt.Errorf("dsl: trusted %s mediates %d exchanges; only pairwise problems are expressible", pa.ID, n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "problem %s {\n", p.Name)
	for _, pa := range p.Parties {
		if pa.IsTrusted() {
			continue
		}
		fmt.Fprintf(&b, "    %s %s\n", pa.Role, pa.ID)
	}
	for _, pa := range p.Parties {
		if pa.IsTrusted() {
			fmt.Fprintf(&b, "    trusted %s\n", pa.ID)
		}
	}
	b.WriteString("\n")

	emitted := make(map[int]bool, len(p.Exchanges))
	for ei, e := range p.Exchanges {
		if emitted[ei] {
			continue
		}
		partner := -1
		for ej, other := range p.Exchanges {
			if ej == ei || emitted[ej] || other.Trusted != e.Trusted {
				continue
			}
			if other.Gives.Equal(e.Gets) && other.Gets.Equal(e.Gives) {
				partner = ej
				break
			}
		}
		if partner < 0 {
			return "", fmt.Errorf("dsl: exchange %d via %s has no pairwise counterpart; not expressible", ei, e.Trusted)
		}
		emitted[ei], emitted[partner] = true, true
		o := p.Exchanges[partner]
		fmt.Fprintf(&b, "    exchange %s with %s via %s { %s gives %s; %s gives %s }\n",
			e.Principal, o.Principal, e.Trusted,
			e.Principal, bundleDSL(e.Gives), o.Principal, bundleDSL(o.Gives))
	}

	var extras []string
	for _, pa := range p.Parties {
		if pa.LimitedFunds {
			extras = append(extras, fmt.Sprintf("    endowment %s %s", pa.ID, pa.Endowment))
		}
	}
	for _, d := range p.DirectTrust {
		extras = append(extras, fmt.Sprintf("    trust %s -> %s", d.Truster, d.Trustee))
	}
	for ei, e := range p.Exchanges {
		if e.RedOverride {
			extras = append(extras, fmt.Sprintf("    red %s via %s", e.Principal, e.Trusted))
		}
		_ = ei
	}
	for _, c := range p.Constraints {
		extras = append(extras, fmt.Sprintf("    require %s before %s",
			actionDSL(c.Before), actionDSL(c.After)))
	}
	for _, off := range p.Indemnities {
		line := fmt.Sprintf("    indemnify %s covers %s via %s",
			off.By, p.Exchanges[off.Covers].Principal, off.Via)
		if off.Amount != 0 {
			line += fmt.Sprintf(" amount %s", off.Amount)
		}
		extras = append(extras, line)
	}
	if len(extras) > 0 {
		b.WriteString("\n")
		sort.Strings(extras)
		for _, line := range extras {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func actionDSL(a model.Action) string {
	switch a.Kind {
	case model.ActionPay:
		return fmt.Sprintf("pay %s -> %s %s", a.From, a.To, a.Amount)
	case model.ActionGive:
		return fmt.Sprintf("give %s -> %s doc %q", a.From, a.To, string(a.Item))
	default:
		return fmt.Sprintf("notify %s -> %s", a.From, a.To)
	}
}

func bundleDSL(b model.Bundle) string {
	var parts []string
	if b.Amount != 0 {
		parts = append(parts, b.Amount.String())
	}
	for _, it := range b.Items {
		parts = append(parts, fmt.Sprintf("doc %q", string(it)))
	}
	if len(parts) == 0 {
		return "nothing"
	}
	return strings.Join(parts, " + ")
}

package dsl

import (
	"strconv"

	"trustseq/internal/model"
)

// Parse lexes and parses DSL source into a File.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(kind Kind) (Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return Token{}, errf(t.Pos, "expected %s, found %s", kind, t)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent || t.Text != kw {
		return Token{}, errf(t.Pos, "expected %q, found %s", kw, t)
	}
	return p.next(), nil
}

func (p *parser) ident() (string, Pos, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return "", Pos{}, err
	}
	return t.Text, t.Pos, nil
}

func (p *parser) money() (model.Money, error) {
	t, err := p.expect(TokMoney)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, errf(t.Pos, "invalid amount $%s", t.Text)
	}
	return model.Money(n), nil
}

func (p *parser) parseFile() (*File, error) {
	if _, err := p.expectKeyword("problem"); err != nil {
		return nil, err
	}
	name, pos, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	f := &File{Name: name, Pos: pos}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, errf(p.cur().Pos, "unexpected end of input: missing '}'")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.Stmts = append(f.Stmts, st)
	}
	p.next() // '}'
	if _, err := p.expect(TokEOF); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, errf(t.Pos, "expected a statement keyword, found %s", t)
	}
	switch t.Text {
	case "consumer", "producer", "broker", "trusted":
		return p.parseParty()
	case "endowment":
		return p.parseEndowment()
	case "exchange":
		return p.parseExchange()
	case "trust":
		return p.parseTrust()
	case "red":
		return p.parseRed()
	case "indemnify":
		return p.parseIndemnify()
	case "require":
		return p.parseRequire()
	default:
		return nil, errf(t.Pos, "unknown statement %q", t.Text)
	}
}

func (p *parser) parseParty() (Stmt, error) {
	kw := p.next()
	role, err := model.ParseRole(kw.Text)
	if err != nil {
		return nil, errf(kw.Pos, "%v", err)
	}
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	return PartyStmt{Pos: kw.Pos, Role: role, Name: name}, nil
}

func (p *parser) parseEndowment() (Stmt, error) {
	kw := p.next()
	party, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	amount, err := p.money()
	if err != nil {
		return nil, err
	}
	return EndowmentStmt{Pos: kw.Pos, Party: party, Amount: amount}, nil
}

// exchange A with B via T { A gives <bundle>; B gives <bundle> }
func (p *parser) parseExchange() (Stmt, error) {
	kw := p.next()
	a, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	b, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("via"); err != nil {
		return nil, err
	}
	via, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	st := ExchangeStmt{Pos: kw.Pos, A: a, B: b, Via: via}
	for p.cur().Kind != TokRBrace {
		party, pos, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKeyword("gives"); err != nil {
			return nil, err
		}
		bundle, err := p.parseBundle()
		if err != nil {
			return nil, err
		}
		st.Clauses = append(st.Clauses, GiveClause{Pos: pos, Party: party, Bundle: bundle})
		if p.cur().Kind == TokSemi {
			p.next()
		}
	}
	p.next() // '}'
	return st, nil
}

// bundle := asset ('+' asset)*
// asset  := $N | doc "name"
func (p *parser) parseBundle() (BundleExpr, error) {
	be := BundleExpr{Pos: p.cur().Pos}
	for {
		t := p.cur()
		switch {
		case t.Kind == TokMoney:
			amount, err := p.money()
			if err != nil {
				return BundleExpr{}, err
			}
			be.Amount += amount
		case t.Kind == TokIdent && t.Text == "doc":
			p.next()
			s, err := p.expect(TokString)
			if err != nil {
				return BundleExpr{}, err
			}
			be.Items = append(be.Items, s.Text)
		case t.Kind == TokIdent && t.Text == "nothing":
			p.next()
		default:
			return BundleExpr{}, errf(t.Pos, "expected an asset ($N, doc \"name\" or nothing), found %s", t)
		}
		if p.cur().Kind == TokPlus {
			p.next()
			continue
		}
		return be, nil
	}
}

// require <action> before <action>
// action := pay A -> B $N | give A -> B doc "x" | notify A -> B
func (p *parser) parseRequire() (Stmt, error) {
	kw := p.next()
	before, err := p.parseActionExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("before"); err != nil {
		return nil, err
	}
	after, err := p.parseActionExpr()
	if err != nil {
		return nil, err
	}
	return RequireStmt{Pos: kw.Pos, Before: before, After: after}, nil
}

func (p *parser) parseActionExpr() (ActionExpr, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return ActionExpr{}, errf(t.Pos, "expected an action (pay/give/notify), found %s", t)
	}
	switch t.Text {
	case "pay", "give", "notify":
	default:
		return ActionExpr{}, errf(t.Pos, "unknown action %q (want pay, give or notify)", t.Text)
	}
	p.next()
	out := ActionExpr{Pos: t.Pos, Kind: t.Text}
	from, _, err := p.ident()
	if err != nil {
		return ActionExpr{}, err
	}
	out.From = from
	if _, err := p.expect(TokArrow); err != nil {
		return ActionExpr{}, err
	}
	to, _, err := p.ident()
	if err != nil {
		return ActionExpr{}, err
	}
	out.To = to
	switch out.Kind {
	case "pay":
		amount, err := p.money()
		if err != nil {
			return ActionExpr{}, err
		}
		out.Amount = amount
	case "give":
		if _, err := p.expectKeyword("doc"); err != nil {
			return ActionExpr{}, err
		}
		s, err := p.expect(TokString)
		if err != nil {
			return ActionExpr{}, err
		}
		out.Item = s.Text
	}
	return out, nil
}

func (p *parser) parseTrust() (Stmt, error) {
	kw := p.next()
	truster, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokArrow); err != nil {
		return nil, err
	}
	trustee, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	return TrustStmt{Pos: kw.Pos, Truster: truster, Trustee: trustee}, nil
}

func (p *parser) parseRed() (Stmt, error) {
	kw := p.next()
	party, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("via"); err != nil {
		return nil, err
	}
	via, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	return RedStmt{Pos: kw.Pos, Party: party, Via: via}, nil
}

// indemnify B covers C via T [amount $N]
func (p *parser) parseIndemnify() (Stmt, error) {
	kw := p.next()
	by, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("covers"); err != nil {
		return nil, err
	}
	protected, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKeyword("via"); err != nil {
		return nil, err
	}
	via, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := IndemnifyStmt{Pos: kw.Pos, By: by, Protected: protected, Via: via}
	if p.cur().Kind == TokIdent && p.cur().Text == "amount" {
		p.next()
		amount, err := p.money()
		if err != nil {
			return nil, err
		}
		st.Amount = amount
	}
	return st, nil
}

package dsl

import (
	"fmt"
	"io"

	"trustseq/internal/model"
)

// maxSourceBytes bounds how much specification source LoadReader will
// consume. Real .exch files are a few hundred bytes; the cap exists so a
// network-facing caller (cmd/trustd) cannot be fed an unbounded body.
const maxSourceBytes = 1 << 20

// LoadReader parses and compiles DSL source streamed from r, the
// reusable entry point shared by the CLIs (reading files) and the
// trustd service (reading HTTP request bodies). It reads at most 1 MiB;
// longer inputs fail rather than truncate.
func LoadReader(r io.Reader) (*model.Problem, error) {
	src, err := io.ReadAll(io.LimitReader(r, maxSourceBytes+1))
	if err != nil {
		return nil, fmt.Errorf("dsl: reading source: %w", err)
	}
	if len(src) > maxSourceBytes {
		return nil, fmt.Errorf("dsl: source exceeds %d bytes", maxSourceBytes)
	}
	return Load(string(src))
}

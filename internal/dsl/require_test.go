package dsl

import (
	"strings"
	"testing"

	"trustseq/internal/core"
	"trustseq/internal/model"
)

const constrainedSrc = `
problem constrained {
    consumer c
    broker   b
    producer p
    trusted  t1
    trusted  t2

    exchange c with b via t1 { c gives $100; b gives doc "d" }
    exchange b with p via t2 { b gives $80;  p gives doc "d" }

    // Section 2.4's example: the producer-to-broker transfer must precede
    // the broker-to-consumer transfer (here via the intermediaries).
    require give p -> t2 doc "d" before give b -> t1 doc "d"
    // The broker may only pay the producer's side after being notified.
    require notify t1 -> b before pay b -> t2 $80
}
`

func TestRequireCompilesToConstraints(t *testing.T) {
	t.Parallel()
	p, err := Load(constrainedSrc)
	if err != nil {
		t.Fatalf("Load = %v", err)
	}
	if len(p.Constraints) != 2 {
		t.Fatalf("constraints = %d", len(p.Constraints))
	}
	want := model.Constraint{
		Before: model.Give("p", "t2", "d"),
		After:  model.Give("b", "t1", "d"),
	}
	if p.Constraints[0] != want {
		t.Errorf("constraint[0] = %v, want %v", p.Constraints[0], want)
	}
}

// The synthesized Example 1 plan naturally satisfies both Section 2.4
// constraints; Verify (which now includes CheckConstraints) passes.
func TestPlanSatisfiesDeclaredConstraints(t *testing.T) {
	t.Parallel()
	p, err := Load(constrainedSrc)
	if err != nil {
		t.Fatalf("Load = %v", err)
	}
	plan, err := core.Synthesize(p)
	if err != nil {
		t.Fatalf("Synthesize = %v", err)
	}
	if !plan.Feasible {
		t.Fatalf("infeasible")
	}
	if err := plan.CheckConstraints(); err != nil {
		t.Fatalf("CheckConstraints = %v", err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatalf("Verify = %v", err)
	}
}

// An unsatisfiable constraint (reversing the resale order) is caught.
func TestViolatedConstraintDetected(t *testing.T) {
	t.Parallel()
	src := strings.Replace(constrainedSrc,
		`require give p -> t2 doc "d" before give b -> t1 doc "d"`,
		`require give b -> t1 doc "d" before give p -> t2 doc "d"`, 1)
	p, err := Load(src)
	if err != nil {
		t.Fatalf("Load = %v", err)
	}
	plan, err := core.Synthesize(p)
	if err != nil {
		t.Fatalf("Synthesize = %v", err)
	}
	err = plan.CheckConstraints()
	if err == nil || !strings.Contains(err.Error(), "violated") {
		t.Fatalf("CheckConstraints = %v, want violation", err)
	}
	if err := plan.Verify(); err == nil {
		t.Fatalf("Verify passed despite violated constraint")
	}
}

// A constraint whose later action never occurs is vacuous.
func TestVacuousConstraint(t *testing.T) {
	t.Parallel()
	src := strings.Replace(constrainedSrc,
		`require notify t1 -> b before pay b -> t2 $80`,
		`require notify t1 -> b before pay b -> t2 $9999`, 1)
	p, err := Load(src)
	if err != nil {
		t.Fatalf("Load = %v", err)
	}
	plan, err := core.Synthesize(p)
	if err != nil {
		t.Fatalf("Synthesize = %v", err)
	}
	if err := plan.CheckConstraints(); err != nil {
		t.Fatalf("vacuous constraint rejected: %v", err)
	}
}

func TestRequireParseErrors(t *testing.T) {
	t.Parallel()
	tests := []struct{ name, src, want string }{
		{"bad action", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; p gives doc "d" } require teleport c -> p before pay c -> t $1 }`, "unknown action"},
		{"missing before", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; p gives doc "d" } require pay c -> t $1 after pay c -> t $1 }`, `expected "before"`},
		{"undeclared party", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; p gives doc "d" } require pay z -> t $1 before pay c -> t $1 }`, "undeclared party"},
		{"invalid amount", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; p gives doc "d" } require pay c -> t $0 before pay c -> t $1 }`, "invalid constraint action"},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, err := Load(tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Load = %v, want %q", err, tt.want)
			}
		})
	}
}

// Constraints round-trip through the printer.
func TestRequireRoundTrip(t *testing.T) {
	t.Parallel()
	p, err := Load(constrainedSrc)
	if err != nil {
		t.Fatalf("Load = %v", err)
	}
	src, err := Print(p)
	if err != nil {
		t.Fatalf("Print = %v", err)
	}
	if !strings.Contains(src, `require give p -> t2 doc "d" before give b -> t1 doc "d"`) {
		t.Fatalf("printed source missing constraint:\n%s", src)
	}
	back, err := Load(src)
	if err != nil {
		t.Fatalf("Load(Print) = %v\n%s", err, src)
	}
	if len(back.Constraints) != len(p.Constraints) {
		t.Fatalf("constraints lost in round trip")
	}
}

package dsl

import (
	"strings"
	"testing"

	"trustseq/internal/core"
	"trustseq/internal/model"
	"trustseq/internal/paperex"
)

const example1Src = `
// Figure 1: consumer buys a document from a producer through a broker.
problem example1 {
    consumer c
    broker   b
    producer p
    trusted  t1
    trusted  t2

    exchange c with b via t1 { c gives $100; b gives doc "d" }
    exchange b with p via t2 { b gives $80;  p gives doc "d" }
}
`

func TestLexBasics(t *testing.T) {
	t.Parallel()
	toks, err := Lex(`problem x { $10 + doc "a b" ; -> } // tail`)
	if err != nil {
		t.Fatalf("Lex = %v", err)
	}
	kinds := make([]Kind, 0, len(toks))
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Kind{TokIdent, TokIdent, TokLBrace, TokMoney, TokPlus, TokIdent, TokString, TokSemi, TokArrow, TokRBrace, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[3].Text != "10" {
		t.Errorf("money text = %q", toks[3].Text)
	}
	if toks[6].Text != "a b" {
		t.Errorf("string text = %q", toks[6].Text)
	}
}

func TestLexComments(t *testing.T) {
	t.Parallel()
	toks, err := Lex("a /* block\ncomment */ b // line\nc")
	if err != nil {
		t.Fatalf("Lex = %v", err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("tokens = %v", toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("c at line %d, want 3", toks[2].Pos.Line)
	}
}

func TestLexStringEscapes(t *testing.T) {
	t.Parallel()
	toks, err := Lex(`"a\"b\\c\nd\te"`)
	if err != nil {
		t.Fatalf("Lex = %v", err)
	}
	if got := toks[0].Text; got != "a\"b\\c\nd\te" {
		t.Fatalf("string = %q", got)
	}
}

func TestLexErrors(t *testing.T) {
	t.Parallel()
	tests := []struct {
		src  string
		want string
	}{
		{`$`, "'$' must be followed by digits"},
		{`"abc`, "unterminated string"},
		{`"a` + "\n" + `"`, "unterminated string"},
		{`/* open`, "unterminated block comment"},
		{`a - b`, "did you mean '->'"},
		{`"\q"`, "unknown escape"},
		{`#`, "unexpected character"},
	}
	for _, tt := range tests {
		_, err := Lex(tt.src)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("Lex(%q) = %v, want %q", tt.src, err, tt.want)
		}
	}
}

func TestParseAndCompileExample1(t *testing.T) {
	t.Parallel()
	p, err := Load(example1Src)
	if err != nil {
		t.Fatalf("Load = %v", err)
	}
	if p.Name != "example1" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Parties) != 5 || len(p.Exchanges) != 4 {
		t.Fatalf("parties=%d exchanges=%d", len(p.Parties), len(p.Exchanges))
	}
	// The compiled problem must be semantically identical to the fixture:
	// same graph verdict and same 10-step execution shape.
	plan, err := core.Synthesize(p)
	if err != nil {
		t.Fatalf("Synthesize = %v", err)
	}
	if !plan.Feasible {
		t.Fatalf("compiled example1 infeasible")
	}
	if got := len(plan.ActionSteps()); got != 10 {
		t.Errorf("steps = %d, want 10", got)
	}
	if err := plan.Verify(); err != nil {
		t.Errorf("Verify = %v", err)
	}
}

func TestCompileEndowmentTrustRedIndemnify(t *testing.T) {
	t.Parallel()
	src := `
problem full {
    consumer c
    broker b
    producer p
    trusted t1
    trusted t2
    exchange c with b via t1 { c gives $100; b gives doc "d" }
    exchange b with p via t2 { b gives $80; p gives doc "d" }
    endowment b $80
    trust p -> b
    red b via t2
    indemnify b covers c via t1 amount $40
}
`
	p, err := Load(src)
	if err != nil {
		t.Fatalf("Load = %v", err)
	}
	pa, _ := p.Party("b")
	if !pa.LimitedFunds || pa.Endowment != 80 {
		t.Errorf("endowment not applied: %+v", pa)
	}
	if !p.Trusts("p", "b") {
		t.Errorf("trust not applied")
	}
	redIdx := -1
	for i, e := range p.Exchanges {
		if e.RedOverride {
			redIdx = i
		}
	}
	if redIdx < 0 || p.Exchanges[redIdx].Principal != "b" || p.Exchanges[redIdx].Trusted != "t2" {
		t.Errorf("red override wrong: %d", redIdx)
	}
	if len(p.Indemnities) != 1 || p.Indemnities[0].Amount != 40 || p.Exchanges[p.Indemnities[0].Covers].Principal != "c" {
		t.Errorf("indemnity wrong: %+v", p.Indemnities)
	}
}

func TestCompileErrors(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name, src, want string
	}{
		{"missing problem", `x`, `expected "problem"`},
		{"missing brace", `problem x`, "expected '{'"},
		{"unterminated block", `problem x {`, "missing '}'"},
		{"unknown stmt", `problem x { widget y }`, "unknown statement"},
		{"dup party", `problem x { consumer c consumer c }`, "already declared"},
		{"undeclared in exchange", `problem x { consumer c trusted t exchange c with b via t { c gives $1 } }`, "undeclared party"},
		{"trusted as principal", `problem x { consumer c trusted t trusted u exchange c with t via u { c gives $1 } }`, "expected a principal"},
		{"principal as via", `problem x { consumer c producer p broker b exchange c with p via b { c gives $1 } }`, "expected a trusted component"},
		{"self exchange", `problem x { consumer c trusted t exchange c with c via t { c gives $1 } }`, "itself"},
		{"foreign clause", `problem x { consumer c producer p broker b trusted t exchange c with p via t { b gives $1 } }`, "not a party of this exchange"},
		{"dup clause", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; c gives $2 } }`, "duplicate 'gives'"},
		{"too many clauses", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; p gives doc "d"; c gives $2 } }`, "1 or 2 'gives'"},
		{"reused via", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; p gives doc "d" } exchange c with p via t { c gives $1; p gives doc "e" } }`, "already has an exchange via"},
		{"endowment unknown", `problem x { endowment z $5 }`, "undeclared party"},
		{"dup endowment", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; p gives doc "d" } endowment c $5 endowment c $6 }`, "duplicate endowment"},
		{"self trust", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; p gives doc "d" } trust c -> c }`, "cannot trust itself"},
		{"red without exchange", `problem x { consumer c producer p trusted t exchange c with p via t { c gives $1; p gives doc "d" } trusted u red c via u }`, "no exchange of"},
		{"indemnify without exchange", `problem x { consumer c producer p broker b trusted t exchange c with p via t { c gives $1; p gives doc "d" } indemnify b covers b via t }`, "no exchange of"},
		{"bad asset", `problem x { consumer c producer p trusted t exchange c with p via t { c gives wampum } }`, "expected an asset"},
		{"empty exchange compiles to model error", `problem x { consumer c producer p trusted t exchange c with p via t { c gives nothing } }`, "moves nothing"},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, err := Load(tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Load = %v, want error containing %q", err, tt.want)
			}
		})
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	t.Parallel()
	_, err := Load("problem x {\n  widget y\n}")
	if err == nil {
		t.Fatalf("no error")
	}
	var derr *Error
	if !strings.Contains(err.Error(), "2:3") {
		t.Errorf("error %q missing position 2:3", err.Error())
	}
	_ = derr
}

// Round trip: fixture problems print to DSL and load back to equivalent
// problems (same verdicts, same structure).
func TestPrintRoundTrip(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"example1", "example2", "example2-variant1", "example1-poor-broker", "figure7", "example2-indemnified"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			orig := paperex.All()[name]
			src, err := Print(orig)
			if err != nil {
				t.Fatalf("Print = %v", err)
			}
			back, err := Load(src)
			if err != nil {
				t.Fatalf("Load(Print) = %v\n%s", err, src)
			}
			if len(back.Parties) != len(orig.Parties) || len(back.Exchanges) != len(orig.Exchanges) {
				t.Fatalf("shape changed: %d/%d parties, %d/%d exchanges",
					len(back.Parties), len(orig.Parties), len(back.Exchanges), len(orig.Exchanges))
			}
			p1, err := core.Synthesize(orig)
			if err != nil {
				t.Fatalf("Synthesize(orig) = %v", err)
			}
			p2, err := core.Synthesize(back)
			if err != nil {
				t.Fatalf("Synthesize(back) = %v", err)
			}
			if p1.Feasible != p2.Feasible {
				t.Errorf("feasibility changed through round trip: %v vs %v", p1.Feasible, p2.Feasible)
			}
			if p1.Feasible && len(p1.ActionSteps()) != len(p2.ActionSteps()) {
				t.Errorf("step count changed: %d vs %d", len(p1.ActionSteps()), len(p2.ActionSteps()))
			}
		})
	}
}

// The universal-intermediary construction is not expressible; Print must
// say so rather than emit garbage.
func TestPrintRejectsUniversalTI(t *testing.T) {
	t.Parallel()
	p := paperex.UniversalTrust(paperex.Example2())
	if _, err := Print(p); err == nil {
		t.Fatalf("Print accepted a universal-TI problem")
	}
}

func TestBundleExprConversion(t *testing.T) {
	t.Parallel()
	be := BundleExpr{Amount: 5, Items: []string{"b", "a"}}
	b := be.Bundle()
	if !b.Equal(model.Cash(5).With("a", "b")) {
		t.Fatalf("Bundle = %v", b)
	}
}

func TestMixedBundleExchange(t *testing.T) {
	t.Parallel()
	src := `
problem mixed {
    consumer c
    producer p
    trusted t
    exchange c with p via t { c gives $10 + doc "trade-in"; p gives doc "new" + doc "manual" }
}
`
	p, err := Load(src)
	if err != nil {
		t.Fatalf("Load = %v", err)
	}
	e := p.Exchanges[0]
	if !e.Gives.Equal(model.Cash(10).With("trade-in")) {
		t.Errorf("gives = %v", e.Gives)
	}
	if !e.Gets.Equal(model.Goods("new", "manual")) {
		t.Errorf("gets = %v", e.Gets)
	}
}

func TestTokenAndKindStrings(t *testing.T) {
	t.Parallel()
	if (Token{Kind: TokMoney, Text: "5"}).String() != "$5" {
		t.Errorf("money token string")
	}
	if (Token{Kind: TokIdent, Text: "x"}).String() != `"x"` {
		t.Errorf("ident token string")
	}
	if TokArrow.String() != "'->'" || TokEOF.String() != "end of input" {
		t.Errorf("kind strings")
	}
}

package dsl

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer tokenizes DSL source. Use Lex to tokenize a whole input.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

// Lex tokenizes the source, returning the token stream terminated by a
// TokEOF token, or a positioned error on the first invalid input.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *lexer) peek() (rune, int) {
	if l.off >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.off:])
}

func (l *lexer) advance() rune {
	r, w := l.peek()
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) skipSpaceAndComments() error {
	for {
		r, _ := l.peek()
		switch {
		case r == 0:
			return nil
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && strings.HasPrefix(l.src[l.off:], "//"):
			for {
				r, _ := l.peek()
				if r == 0 || r == '\n' {
					break
				}
				l.advance()
			}
		case r == '/' && strings.HasPrefix(l.src[l.off:], "/*"):
			start := l.pos()
			l.advance() // '/'
			l.advance() // '*'
			closed := false
			for !closed {
				r, _ := l.peek()
				if r == 0 {
					return errf(start, "unterminated block comment")
				}
				if r == '*' && strings.HasPrefix(l.src[l.off:], "*/") {
					l.advance()
					l.advance()
					closed = true
					continue
				}
				l.advance()
			}
		default:
			return nil
		}
	}
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	r, _ := l.peek()
	switch {
	case r == 0:
		return Token{Kind: TokEOF, Pos: pos}, nil
	case r == '{':
		l.advance()
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case r == '}':
		l.advance()
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case r == ';':
		l.advance()
		return Token{Kind: TokSemi, Pos: pos}, nil
	case r == ',':
		l.advance()
		return Token{Kind: TokComma, Pos: pos}, nil
	case r == '+':
		l.advance()
		return Token{Kind: TokPlus, Pos: pos}, nil
	case r == '-':
		l.advance()
		if r2, _ := l.peek(); r2 == '>' {
			l.advance()
			return Token{Kind: TokArrow, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '-' (did you mean '->'?)")
	case r == '$':
		l.advance()
		digits := l.lexDigits()
		if digits == "" {
			return Token{}, errf(pos, "'$' must be followed by digits")
		}
		return Token{Kind: TokMoney, Text: digits, Pos: pos}, nil
	case r >= '0' && r <= '9':
		return Token{Kind: TokNumber, Text: l.lexDigits(), Pos: pos}, nil
	case r == '"':
		return l.lexString(pos)
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for {
			r, w := l.peek()
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
				b.WriteRune(l.advance())
				continue
			}
			// A '-' continues an identifier only when followed by an
			// identifier character; "a->b" still lexes as ident, arrow,
			// ident.
			if r == '-' {
				if n, _ := utf8.DecodeRuneInString(l.src[l.off+w:]); unicode.IsLetter(n) || unicode.IsDigit(n) || n == '_' {
					b.WriteRune(l.advance())
					continue
				}
			}
			break
		}
		return Token{Kind: TokIdent, Text: b.String(), Pos: pos}, nil
	default:
		return Token{}, errf(pos, "unexpected character %q", r)
	}
}

func (l *lexer) lexDigits() string {
	var b strings.Builder
	for {
		r, _ := l.peek()
		if r < '0' || r > '9' {
			break
		}
		b.WriteRune(l.advance())
	}
	return b.String()
}

func (l *lexer) lexString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		r, _ := l.peek()
		switch r {
		case 0, '\n':
			return Token{}, errf(pos, "unterminated string")
		case '"':
			l.advance()
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		case '\\':
			l.advance()
			esc := l.advance()
			switch esc {
			case '"', '\\':
				b.WriteRune(esc)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return Token{}, errf(pos, "unknown escape \\%c", esc)
			}
		default:
			b.WriteRune(l.advance())
		}
	}
}

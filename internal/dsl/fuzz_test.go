package dsl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// The lexer never panics and always terminates on arbitrary input.
func TestLexNeverPanics(t *testing.T) {
	t.Parallel()
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		toks, err := Lex(src)
		if err != nil {
			return true
		}
		// On success the stream is EOF-terminated and position-monotone.
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The parser never panics on token soup assembled from valid lexemes.
func TestParseNeverPanics(t *testing.T) {
	t.Parallel()
	pieces := []string{
		"problem", "exchange", "with", "via", "gives", "doc", "trust",
		"red", "indemnify", "covers", "amount", "require", "before",
		"consumer", "producer", "broker", "trusted", "endowment",
		"{", "}", ";", "+", "->", "$5", `"d"`, "x", "nothing",
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 400; i++ {
		n := 1 + rng.Intn(25)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// Loading random valid-ish programs either fails cleanly or yields a
// validated problem.
func TestLoadAlwaysValidOrError(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		price := 1 + rng.Intn(50)
		src := strings.ReplaceAll(`
problem fuzz {
    consumer c
    producer p
    trusted t
    exchange c with p via t { c gives $PRICE; p gives doc "d" }
}
`, "PRICE", itoa(price))
		p, err := Load(src)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("instance %d: compiled problem invalid: %v", i, err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

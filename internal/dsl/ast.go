package dsl

import "trustseq/internal/model"

// File is a parsed DSL file: one problem declaration.
type File struct {
	Name  string
	Pos   Pos
	Stmts []Stmt
}

// Stmt is a statement inside a problem block.
type Stmt interface {
	stmt()
	Position() Pos
}

// PartyStmt declares a principal or trusted component:
// `consumer c`, `broker b`, `producer p`, `trusted t1`.
type PartyStmt struct {
	Pos  Pos
	Role model.Role
	Name string
}

// EndowmentStmt bounds a party's funds: `endowment b $80`.
type EndowmentStmt struct {
	Pos    Pos
	Party  string
	Amount model.Money
}

// BundleExpr is a parsed asset bundle: money plus documents.
type BundleExpr struct {
	Pos    Pos
	Amount model.Money
	Items  []string
}

// Bundle converts to a model bundle.
func (b BundleExpr) Bundle() model.Bundle {
	out := model.Cash(b.Amount)
	for _, it := range b.Items {
		out = out.With(model.ItemID(it))
	}
	return out
}

// GiveClause is one side of an exchange: `c gives $100`.
type GiveClause struct {
	Pos    Pos
	Party  string
	Bundle BundleExpr
}

// ExchangeStmt declares a pairwise exchange through an intermediary:
// `exchange c with b via t1 { c gives $100; b gives doc "d" }`.
// It compiles into two model.Exchange records (one per principal).
type ExchangeStmt struct {
	Pos     Pos
	A, B    string
	Via     string
	Clauses []GiveClause
}

// TrustStmt declares direct trust: `trust p -> b` (p trusts b).
type TrustStmt struct {
	Pos              Pos
	Truster, Trustee string
}

// RedStmt forces a red edge: `red b via t2` marks broker b's commitment
// through t2 as must-be-secured-first.
type RedStmt struct {
	Pos   Pos
	Party string
	Via   string
}

// ActionExpr is a parsed primitive action reference used in ordering
// constraints: pay/give/notify with explicit endpoints.
type ActionExpr struct {
	Pos    Pos
	Kind   string // "pay", "give", "notify"
	From   string
	To     string
	Amount model.Money
	Item   string
}

// Action converts to a model action.
func (a ActionExpr) Action() model.Action {
	switch a.Kind {
	case "pay":
		return model.Pay(model.PartyID(a.From), model.PartyID(a.To), a.Amount)
	case "give":
		return model.Give(model.PartyID(a.From), model.PartyID(a.To), model.ItemID(a.Item))
	default:
		return model.Notify(model.PartyID(a.From), model.PartyID(a.To))
	}
}

// RequireStmt declares an explicit ordering constraint (Section 2.4):
// `require <earlier action> before <later action>`.
type RequireStmt struct {
	Pos           Pos
	Before, After ActionExpr
}

// IndemnifyStmt posts collateral:
// `indemnify b covers c via t1` or with an explicit `amount $100`.
type IndemnifyStmt struct {
	Pos       Pos
	By        string
	Protected string
	Via       string
	Amount    model.Money // 0 = computed minimum
}

func (RequireStmt) stmt()   {}
func (PartyStmt) stmt()     {}
func (EndowmentStmt) stmt() {}
func (ExchangeStmt) stmt()  {}
func (TrustStmt) stmt()     {}
func (RedStmt) stmt()       {}
func (IndemnifyStmt) stmt() {}

// Position implements Stmt.
func (s RequireStmt) Position() Pos   { return s.Pos }
func (s PartyStmt) Position() Pos     { return s.Pos }
func (s EndowmentStmt) Position() Pos { return s.Pos }
func (s ExchangeStmt) Position() Pos  { return s.Pos }
func (s TrustStmt) Position() Pos     { return s.Pos }
func (s RedStmt) Position() Pos       { return s.Pos }
func (s IndemnifyStmt) Position() Pos { return s.Pos }

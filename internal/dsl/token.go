package dsl

import "fmt"

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	TokInvalid Kind = iota
	TokEOF
	TokIdent
	TokString // "..."
	TokMoney  // $123
	TokNumber // 123
	TokLBrace // {
	TokRBrace // }
	TokSemi   // ;
	TokComma  // ,
	TokPlus   // +
	TokArrow  // ->
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokString:
		return "string"
	case TokMoney:
		return "money"
	case TokNumber:
		return "number"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokSemi:
		return "';'"
	case TokComma:
		return "','"
	case TokPlus:
		return "'+'"
	case TokArrow:
		return "'->'"
	default:
		return "invalid token"
	}
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme with its source position.
type Token struct {
	Kind Kind
	Text string // identifier name, string contents, or number digits
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("%q", t.Text)
	case TokString:
		return fmt.Sprintf("%q", `"`+t.Text+`"`)
	case TokMoney:
		return "$" + t.Text
	case TokNumber:
		return t.Text
	default:
		return t.Kind.String()
	}
}

// Error is a positioned DSL error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("dsl: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Package dsl implements the specification language the paper introduces
// for commercial exchange problems ("We introduce a language for
// specifying these commercial exchange problems", Section 1): a lexer,
// recursive-descent parser, semantic analysis, a compiler to
// model.Problem, and a pretty-printer that round-trips.
//
// A problem file looks like:
//
//	problem example1 {
//	    consumer c
//	    broker   b
//	    producer p
//	    trusted  t1
//	    trusted  t2
//
//	    exchange c with b via t1 { c gives $100; b gives doc "d" }
//	    exchange b with p via t2 { b gives $80;  p gives doc "d" }
//
//	    // optional clauses:
//	    // endowment b $80
//	    // trust p -> b
//	    // red b via t2
//	    // indemnify b covers c via t1 amount $100
//	}
//
// # Key types
//
//   - File is the parsed AST root; Stmt is the statement interface with
//     one concrete type per clause (PartyStmt, ExchangeStmt, TrustStmt,
//     RedStmt, EndowmentStmt, IndemnifyStmt, RequireStmt, ...).
//   - Load lexes, parses and compiles source in one call; LoadReader
//     does the same from an io.Reader with a 1 MiB cap (the trustd
//     request path); Compile lowers a File to a model.Problem; Print
//     renders a Problem back to canonical source.
//   - Errors carry line/column positions; the lexer and parser are
//     fuzz-tested to never panic on arbitrary bytes.
//
// # Concurrency and ownership
//
// Every entry point is a pure function: no package-level state, no
// retained references to inputs, a fresh AST and Problem per call. Any
// number of Load/LoadReader/Print calls may run concurrently — the
// trustd service parses requests on whatever goroutine the HTTP server
// schedules, with no synchronization.
package dsl

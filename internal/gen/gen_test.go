package gen

import (
	"math/rand"
	"testing"

	"trustseq/internal/core"
	"trustseq/internal/model"
)

func TestPairValidFeasible(t *testing.T) {
	t.Parallel()
	p := Pair(42)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	plan, err := core.Synthesize(p)
	if err != nil || !plan.Feasible {
		t.Fatalf("pair plan: %v feasible=%v", err, plan != nil && plan.Feasible)
	}
	if err := plan.Verify(); err != nil {
		t.Fatalf("Verify = %v", err)
	}
}

func TestChainShapes(t *testing.T) {
	t.Parallel()
	for k := 0; k <= 5; k++ {
		p := Chain(k, 100)
		if err := p.Validate(); err != nil {
			t.Fatalf("Chain(%d) invalid: %v", k, err)
		}
		wantExchanges := 2 * (k + 1)
		if len(p.Exchanges) != wantExchanges {
			t.Errorf("Chain(%d) exchanges = %d, want %d", k, len(p.Exchanges), wantExchanges)
		}
		wantParties := 2 + k + (k + 1) // c, p, brokers, trusteds
		if len(p.Parties) != wantParties {
			t.Errorf("Chain(%d) parties = %d, want %d", k, len(p.Parties), wantParties)
		}
	}
	// Tiny retail prices are adjusted to keep every hop positive.
	p := Chain(5, 1)
	if err := p.Validate(); err != nil {
		t.Fatalf("adjusted chain invalid: %v", err)
	}
}

func TestStarShape(t *testing.T) {
	t.Parallel()
	p := Star([]model.Money{10, 20, 30})
	if err := p.Validate(); err != nil {
		t.Fatalf("Star invalid: %v", err)
	}
	if len(p.Exchanges) != 12 {
		t.Errorf("exchanges = %d, want 12", len(p.Exchanges))
	}
	idx := ConsumerStarIndices(3)
	for i, ei := range idx {
		e := p.Exchanges[ei]
		if e.Principal != "c" {
			t.Errorf("index %d: principal %s", i, e.Principal)
		}
		if e.Gives.Amount != []model.Money{10, 20, 30}[i] {
			t.Errorf("index %d: price %v", i, e.Gives.Amount)
		}
	}
	// Wholesale price floor of $1.
	tiny := Star([]model.Money{1})
	if err := tiny.Validate(); err != nil {
		t.Fatalf("tiny star invalid: %v", err)
	}
}

func TestRandomAlwaysValid(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		p := Random(rng, Options{
			Consumers: 1 + i%3, Brokers: 1 + i%2, Producers: 1 + i%4,
			MaxPrice: 30, PoorBroker: i%5 == 0, DirectTrustProb: 0.4,
		})
		if err := p.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v", i, err)
		}
		// Synthesis never errors (feasibility may vary).
		if _, err := core.Synthesize(p); err != nil {
			t.Fatalf("instance %d synthesize: %v", i, err)
		}
	}
}

func TestRandomDefaultsApplied(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	p := Random(rng, Options{})
	if err := p.Validate(); err != nil {
		t.Fatalf("defaulted instance invalid: %v", err)
	}
	if len(p.Exchanges) == 0 {
		t.Fatalf("no exchanges generated")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	t.Parallel()
	a := Random(rand.New(rand.NewSource(9)), Options{Consumers: 2, Brokers: 2, Producers: 2})
	b := Random(rand.New(rand.NewSource(9)), Options{Consumers: 2, Brokers: 2, Producers: 2})
	if len(a.Exchanges) != len(b.Exchanges) {
		t.Fatalf("seeded generation differs: %d vs %d", len(a.Exchanges), len(b.Exchanges))
	}
	for i := range a.Exchanges {
		if a.Exchanges[i].Gives.Amount != b.Exchanges[i].Gives.Amount {
			t.Fatalf("exchange %d differs", i)
		}
	}
}

func TestParallelShape(t *testing.T) {
	t.Parallel()
	for k := 1; k <= 4; k++ {
		p := Parallel(k, 10)
		if err := p.Validate(); err != nil {
			t.Fatalf("Parallel(%d) invalid: %v", k, err)
		}
		if len(p.Exchanges) != 2*k || len(p.Parties) != 3*k {
			t.Errorf("Parallel(%d): %d exchanges, %d parties", k, len(p.Exchanges), len(p.Parties))
		}
		plan, err := core.Synthesize(p)
		if err != nil || !plan.Feasible {
			t.Fatalf("Parallel(%d): %v feasible=%v", k, err, plan != nil && plan.Feasible)
		}
	}
}

func TestPopulationFeasible(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 3, 8, 40} {
		p := Population(n, 0, 10)
		if err := p.Validate(); err != nil {
			t.Fatalf("Population(%d).Validate = %v", n, err)
		}
		plan, err := core.Synthesize(p)
		if err != nil {
			t.Fatalf("Population(%d): %v", n, err)
		}
		if !plan.Feasible {
			t.Fatalf("Population(%d) infeasible", n)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("Population(%d).Verify = %v", n, err)
		}
		if len(p.Exchanges) != 4*n {
			t.Fatalf("Population(%d): %d exchanges, want %d", n, len(p.Exchanges), 4*n)
		}
	}
}

func TestPopulationTierSizing(t *testing.T) {
	t.Parallel()
	p := Population(1024, 0, 10)
	brokers, producers := 0, 0
	for _, pa := range p.Parties {
		switch pa.Role {
		case model.RoleBroker:
			brokers++
		case model.RoleProducer:
			producers++
		}
	}
	if brokers != 1024 || producers != 4 {
		t.Fatalf("tiers = %d brokers, %d producers; want 1024, 4", brokers, producers)
	}
	// An explicit producer-tier size is honored.
	p = Population(10, 2, 10)
	producers = 0
	for _, pa := range p.Parties {
		if pa.Role == model.RoleProducer {
			producers++
		}
	}
	if producers != 2 {
		t.Fatalf("explicit producers = %d, want 2", producers)
	}
}

package gen

import (
	"fmt"
	"math/rand"

	"trustseq/internal/model"
)

// Pair builds the simplest exchange: one consumer buying one document
// from one producer through one trusted intermediary.
func Pair(price model.Money) *model.Problem {
	return &model.Problem{
		Name: "pair",
		Parties: []model.Party{
			{ID: "c", Role: model.RoleConsumer},
			{ID: "p", Role: model.RoleProducer},
			{ID: "t", Role: model.RoleTrusted},
		},
		Exchanges: []model.Exchange{
			{Principal: "c", Trusted: "t", Gives: model.Cash(price), Gets: model.Goods("d")},
			{Principal: "p", Trusted: "t", Gives: model.Goods("d"), Gets: model.Cash(price)},
		},
	}
}

// Chain builds a resale chain of depth k: a consumer buys a document
// that passes through k brokers from a single producer, each hop through
// its own trusted intermediary. Chain(0) is Pair. Prices decrease along
// the chain toward the producer, giving each broker a margin. Feasible
// for every k when brokers are funded.
func Chain(k int, retail model.Money) *model.Problem {
	if retail < model.Money(k+1) {
		retail = model.Money(k + 1) // keep every hop's price positive
	}
	p := &model.Problem{Name: fmt.Sprintf("chain-%d", k)}
	p.Parties = append(p.Parties,
		model.Party{ID: "c", Role: model.RoleConsumer},
		model.Party{ID: "p", Role: model.RoleProducer},
	)
	doc := model.ItemID("d")
	// Participants along the chain: c, b1..bk, p.
	chain := []model.PartyID{"c"}
	for i := 1; i <= k; i++ {
		id := model.PartyID(fmt.Sprintf("b%d", i))
		p.Parties = append(p.Parties, model.Party{ID: id, Role: model.RoleBroker})
		chain = append(chain, id)
	}
	chain = append(chain, "p")
	price := retail
	for i := 0; i+1 < len(chain); i++ {
		t := model.PartyID(fmt.Sprintf("t%d", i+1))
		p.Parties = append(p.Parties, model.Party{ID: t, Role: model.RoleTrusted})
		buyer, seller := chain[i], chain[i+1]
		p.Exchanges = append(p.Exchanges,
			model.Exchange{Principal: buyer, Trusted: t, Gives: model.Cash(price), Gets: model.Goods(doc)},
			model.Exchange{Principal: seller, Trusted: t, Gives: model.Goods(doc), Gets: model.Cash(price)},
		)
		price-- // each downstream hop is cheaper
	}
	return p
}

// Star builds the Figure 7 shape with k brokers: a consumer needs k
// documents, each resold by its own broker from its own source, all
// conjoined (all-or-nothing). Infeasible without indemnities for k ≥ 2.
// Prices[i] is the retail price of document i; wholesale is 80% of it.
func Star(prices []model.Money) *model.Problem {
	p := &model.Problem{Name: fmt.Sprintf("star-%d", len(prices))}
	p.Parties = append(p.Parties, model.Party{ID: "c", Role: model.RoleConsumer})
	for i, retail := range prices {
		b := model.PartyID(fmt.Sprintf("b%d", i+1))
		s := model.PartyID(fmt.Sprintf("s%d", i+1))
		tr := model.PartyID(fmt.Sprintf("tr%d", i+1)) // retail intermediary
		tw := model.PartyID(fmt.Sprintf("tw%d", i+1)) // wholesale intermediary
		doc := model.ItemID(fmt.Sprintf("d%d", i+1))
		wholesale := retail * 4 / 5
		if wholesale < 1 {
			wholesale = 1
		}
		p.Parties = append(p.Parties,
			model.Party{ID: b, Role: model.RoleBroker},
			model.Party{ID: s, Role: model.RoleProducer},
			model.Party{ID: tr, Role: model.RoleTrusted},
			model.Party{ID: tw, Role: model.RoleTrusted},
		)
		p.Exchanges = append(p.Exchanges,
			model.Exchange{Principal: "c", Trusted: tr, Gives: model.Cash(retail), Gets: model.Goods(doc)},
			model.Exchange{Principal: b, Trusted: tr, Gives: model.Goods(doc), Gets: model.Cash(retail)},
			model.Exchange{Principal: b, Trusted: tw, Gives: model.Cash(wholesale), Gets: model.Goods(doc)},
			model.Exchange{Principal: s, Trusted: tw, Gives: model.Goods(doc), Gets: model.Cash(wholesale)},
		)
	}
	return p
}

// ConsumerStarIndices returns the indices of the consumer's exchanges in
// a Star problem (piece i at 4*i).
func ConsumerStarIndices(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = 4 * i
	}
	return out
}

// Options configures Random.
type Options struct {
	Consumers  int
	Brokers    int
	Producers  int
	MaxPrice   model.Money
	PoorBroker bool // mark brokers LimitedFunds with zero endowment
	// DirectTrustProb is the probability (0..1) that a broker–source pair
	// gets a direct-trust declaration (source trusts broker), enabling
	// persona reductions.
	DirectTrustProb float64
}

// Random generates a randomized brokered market: each consumer requests
// one or more documents; each document is resold by a randomly chosen
// broker from a randomly chosen producer; every pairing gets its own
// trusted intermediary. The result is always a valid problem; its
// feasibility varies with the drawn shape, which is the point for the
// cross-validation experiments.
func Random(rng *rand.Rand, opts Options) *model.Problem {
	if opts.Consumers < 1 {
		opts.Consumers = 1
	}
	if opts.Brokers < 1 {
		opts.Brokers = 1
	}
	if opts.Producers < 1 {
		opts.Producers = 1
	}
	if opts.MaxPrice < 2 {
		opts.MaxPrice = 100
	}
	p := &model.Problem{Name: "random"}
	for i := 0; i < opts.Consumers; i++ {
		p.Parties = append(p.Parties, model.Party{ID: model.PartyID(fmt.Sprintf("c%d", i+1)), Role: model.RoleConsumer})
	}
	for i := 0; i < opts.Brokers; i++ {
		pa := model.Party{ID: model.PartyID(fmt.Sprintf("b%d", i+1)), Role: model.RoleBroker}
		if opts.PoorBroker {
			pa.LimitedFunds = true
		}
		p.Parties = append(p.Parties, pa)
	}
	for i := 0; i < opts.Producers; i++ {
		p.Parties = append(p.Parties, model.Party{ID: model.PartyID(fmt.Sprintf("s%d", i+1)), Role: model.RoleProducer})
	}

	docCount := 0
	trustCount := 0
	newTrusted := func() model.PartyID {
		trustCount++
		id := model.PartyID(fmt.Sprintf("t%d", trustCount))
		p.Parties = append(p.Parties, model.Party{ID: id, Role: model.RoleTrusted})
		return id
	}

	for ci := 0; ci < opts.Consumers; ci++ {
		consumer := model.PartyID(fmt.Sprintf("c%d", ci+1))
		pieces := 1 + rng.Intn(3)
		for k := 0; k < pieces; k++ {
			docCount++
			doc := model.ItemID(fmt.Sprintf("d%d", docCount))
			retail := model.Money(2 + rng.Int63n(int64(opts.MaxPrice-1)))
			wholesale := retail * model.Money(50+rng.Intn(40)) / 100
			if wholesale < 1 {
				wholesale = 1
			}
			broker := model.PartyID(fmt.Sprintf("b%d", 1+rng.Intn(opts.Brokers)))
			source := model.PartyID(fmt.Sprintf("s%d", 1+rng.Intn(opts.Producers)))
			tr := newTrusted()
			tw := newTrusted()
			p.Exchanges = append(p.Exchanges,
				model.Exchange{Principal: consumer, Trusted: tr, Gives: model.Cash(retail), Gets: model.Goods(doc)},
				model.Exchange{Principal: broker, Trusted: tr, Gives: model.Goods(doc), Gets: model.Cash(retail)},
				model.Exchange{Principal: broker, Trusted: tw, Gives: model.Cash(wholesale), Gets: model.Goods(doc)},
				model.Exchange{Principal: source, Trusted: tw, Gives: model.Goods(doc), Gets: model.Cash(wholesale)},
			)
			if rng.Float64() < opts.DirectTrustProb {
				decl := model.TrustDecl{Truster: source, Trustee: broker}
				dup := false
				for _, d := range p.DirectTrust {
					if d == decl {
						dup = true
					}
				}
				if !dup {
					p.DirectTrust = append(p.DirectTrust, decl)
				}
			}
		}
	}
	return p
}

// Population builds a population-scale retail market: n consumers, each
// buying its own document through its own reselling broker, with the
// documents originating at a shared producer tier. Producer i mod
// producers wholesales document d_i at 80% of the retail price; every
// purchase runs through its own retail and wholesale trusted
// intermediary (4 exchanges per document, the feasible Chain(1)
// ladder), so trusted-node degree stays constant while each producer
// fans out over n/producers documents. producers defaults to
// max(1, n/256), bounding the fan-out near 256 however large n grows —
// work and memory per principal stay flat, which is exactly what the
// scale benchmarks measure.
//
// Brokers are deliberately not shared. A broker reselling two or more
// documents is an all-or-nothing conjunction over resale pairs, and the
// Section 6 split machinery cannot save it: an indemnity splits the
// covered exchange into a singleton group, but a singleton retail sell
// can never be scheduled — the broker does not hold the document until
// its wholesale side completes. The producer tier carries the fan-out
// instead; a producer's conjunction of independent sells sequences
// fine.
func Population(n, producers int, price model.Money) *model.Problem {
	if n < 1 {
		n = 1
	}
	if producers < 1 {
		producers = n / 256
		if producers < 1 {
			producers = 1
		}
	}
	if price < 2 {
		price = 10
	}
	wholesale := price * 4 / 5
	if wholesale < 1 {
		wholesale = 1
	}
	p := &model.Problem{Name: fmt.Sprintf("population-%d", n)}
	p.Parties = make([]model.Party, 0, 4*n+producers)
	p.Exchanges = make([]model.Exchange, 0, 4*n)
	for i := 0; i < producers; i++ {
		p.Parties = append(p.Parties, model.Party{ID: model.PartyID(fmt.Sprintf("s%d", i+1)), Role: model.RoleProducer})
	}
	for i := 0; i < n; i++ {
		consumer := model.PartyID(fmt.Sprintf("c%d", i+1))
		broker := model.PartyID(fmt.Sprintf("b%d", i+1))
		source := model.PartyID(fmt.Sprintf("s%d", i%producers+1))
		tr := model.PartyID(fmt.Sprintf("tr%d", i+1))
		tw := model.PartyID(fmt.Sprintf("tw%d", i+1))
		doc := model.ItemID(fmt.Sprintf("d%d", i+1))
		p.Parties = append(p.Parties,
			model.Party{ID: consumer, Role: model.RoleConsumer},
			model.Party{ID: broker, Role: model.RoleBroker},
			model.Party{ID: tr, Role: model.RoleTrusted},
			model.Party{ID: tw, Role: model.RoleTrusted},
		)
		p.Exchanges = append(p.Exchanges,
			model.Exchange{Principal: consumer, Trusted: tr, Gives: model.Cash(price), Gets: model.Goods(doc)},
			model.Exchange{Principal: broker, Trusted: tr, Gives: model.Goods(doc), Gets: model.Cash(price)},
			model.Exchange{Principal: broker, Trusted: tw, Gives: model.Cash(wholesale), Gets: model.Goods(doc)},
			model.Exchange{Principal: source, Trusted: tw, Gives: model.Goods(doc), Gets: model.Cash(wholesale)},
		)
	}
	return p
}

// Parallel builds k independent consumer–producer pair exchanges in one
// problem (distinct parties, documents and intermediaries). The
// sequencing graph grows linearly in k while the exhaustive search's
// state space grows exponentially (every interleaving of the k
// exchanges) — the E13 scaling family.
func Parallel(k int, price model.Money) *model.Problem {
	p := &model.Problem{Name: fmt.Sprintf("parallel-%d", k)}
	for i := 1; i <= k; i++ {
		c := model.PartyID(fmt.Sprintf("c%d", i))
		s := model.PartyID(fmt.Sprintf("s%d", i))
		t := model.PartyID(fmt.Sprintf("t%d", i))
		doc := model.ItemID(fmt.Sprintf("d%d", i))
		p.Parties = append(p.Parties,
			model.Party{ID: c, Role: model.RoleConsumer},
			model.Party{ID: s, Role: model.RoleProducer},
			model.Party{ID: t, Role: model.RoleTrusted},
		)
		p.Exchanges = append(p.Exchanges,
			model.Exchange{Principal: c, Trusted: t, Gives: model.Cash(price), Gets: model.Goods(doc)},
			model.Exchange{Principal: s, Trusted: t, Gives: model.Goods(doc), Gets: model.Cash(price)},
		)
	}
	return p
}

// Package gen generates synthetic commercial-exchange problems — chains,
// stars and randomized brokered markets — for property tests, the
// exhaustive-search cross-validation (E10) and the scaling benchmarks
// (E13). All generators are deterministic in their parameters.
//
// # Key types
//
//   - Pair, Chain, Star and Parallel build the named fixed topologies;
//     ConsumerStarIndices exposes the star's exchange indexing for
//     assertions.
//   - Random draws a brokered market from Options (party counts, price
//     ranges, endowment and trust probabilities) using the caller's
//     *rand.Rand; identical seeds yield identical problems.
//
// # Concurrency and ownership
//
// Generators are pure apart from the *rand.Rand the caller passes to
// Random: a Rand is not safe for concurrent use, so parallel callers
// (sweep workers) each derive their own Rand from a per-index seed. The
// returned Problems are fresh, unshared, and valid by construction —
// every generator output passes model.Validate (property-tested).
package gen

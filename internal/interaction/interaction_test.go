package interaction

import (
	"strings"
	"testing"

	"trustseq/internal/model"
	"trustseq/internal/paperex"
)

func TestNewExample1Structure(t *testing.T) {
	t.Parallel()
	g, err := New(paperex.Example1())
	if err != nil {
		t.Fatalf("New = %v", err)
	}
	if len(g.Principals) != 3 || len(g.Trusted) != 2 {
		t.Fatalf("partition wrong: %v / %v", g.Principals, g.Trusted)
	}
	if len(g.Edges) != 4 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	// Degrees per Figure 1: c=1, b=2, p=1, t1=2, t2=2.
	wantDeg := map[string]int{"c": 1, "b": 2, "p": 1, "t1": 2, "t2": 2}
	for id, want := range wantDeg {
		if got := g.Degree(model.PartyID(id)); got != want {
			t.Errorf("degree(%s) = %d, want %d", id, got, want)
		}
	}
	if !g.Internal(paperex.Broker) || g.Internal(paperex.Consumer) {
		t.Errorf("Internal wrong")
	}
	if got := g.EdgesOf(paperex.Broker); len(got) != 2 {
		t.Errorf("EdgesOf(b) = %v", got)
	}
	if !g.Connected() {
		t.Errorf("example1 reported disconnected")
	}
	if iso := g.Isolated(); len(iso) != 0 {
		t.Errorf("isolated = %v", iso)
	}
}

func TestPersonaDetection(t *testing.T) {
	t.Parallel()
	g, err := New(paperex.Example2Variant1())
	if err != nil {
		t.Fatalf("New = %v", err)
	}
	q, ok := g.PersonaOf(paperex.Trusted2)
	if !ok || q != paperex.Broker1 {
		t.Fatalf("PersonaOf(t2) = %v, %v", q, ok)
	}
	if _, ok := g.PersonaOf(paperex.Trusted1); ok {
		t.Fatalf("t1 wrongly a persona")
	}
}

func TestIsolatedAndDisconnected(t *testing.T) {
	t.Parallel()
	p := paperex.Example1()
	p.Parties = append(p.Parties, p.Parties[0])
	p.Parties[len(p.Parties)-1].ID = "lonely"
	g, err := New(p)
	if err != nil {
		t.Fatalf("New = %v", err)
	}
	iso := g.Isolated()
	if len(iso) != 1 || iso[0] != "lonely" {
		t.Fatalf("Isolated = %v", iso)
	}
	// Two independent pair exchanges are disconnected.
	p2 := paperex.Example2()
	// Remove the consumer's exchanges so the two broker chains split...
	// simpler: build two pairs directly.
	_ = p2
}

func TestConnectedOnSplitMarket(t *testing.T) {
	t.Parallel()
	// Two disjoint pair exchanges.
	p := paperex.Example1()
	p.Exchanges = p.Exchanges[2:] // keep only the b–p exchange via t2
	g, err := New(p)
	if err != nil {
		t.Fatalf("New = %v", err)
	}
	if !g.Connected() { // c and t1 are isolated, not disconnected islands
		t.Fatalf("single remaining component reported disconnected")
	}
}

func TestNewRejectsInvalidProblem(t *testing.T) {
	t.Parallel()
	p := paperex.Example1()
	p.Exchanges[0].Principal = "ghost"
	if _, err := New(p); err == nil {
		t.Fatalf("invalid problem accepted")
	}
}

func TestDOTOutput(t *testing.T) {
	t.Parallel()
	g, err := New(paperex.Example2Variant1())
	if err != nil {
		t.Fatalf("New = %v", err)
	}
	out := g.DOT()
	for _, want := range []string{"shape=circle", "shape=square", "played by b1", "style=dashed", "gives $100"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

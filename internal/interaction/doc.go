// Package interaction implements the interaction graphs of Section 3:
// the bipartite graph I = (P, T, E) of principals, trusted components,
// and the edges between principals and the intermediaries that carry one
// side of their exchanges. The graph is derived mechanically from a
// model.Problem and is the input to sequencing-graph construction.
//
// # Key types
//
//   - Graph carries the node sets and Edges plus derived facts the
//     sequencing layer needs: which parties are personas (a principal
//     playing its own trusted component, Section 4.2.3), which nodes are
//     isolated, and whether the graph is connected.
//   - Edge ties one side of one pairwise exchange to the intermediary
//     that escrows it.
//   - New is the only constructor; it validates the Problem first and
//     returns an error rather than a partial graph.
//
// # Concurrency and ownership
//
// New is pure: it does not retain or mutate its Problem (beyond the
// idempotent pre-fan-out Compile contract described in package model)
// and each call returns a fresh Graph. Graphs are immutable after
// construction and safe for concurrent reads; the package holds no
// locks and starts no goroutines.
package interaction

package interaction

import (
	"fmt"
	"sort"

	"trustseq/internal/dot"
	"trustseq/internal/model"
)

// Graph is the interaction graph I = (P, T, E). Edges are identified by
// the index of the model.Exchange they correspond to, so downstream
// structures (sequencing-graph commitment nodes) share the numbering.
type Graph struct {
	Problem    *model.Problem
	Principals []model.PartyID
	Trusted    []model.PartyID
	// Edges[i] is the interaction edge for Problem.Exchanges[i].
	Edges []Edge
	// Personas maps trusted components played by a principal (direct
	// trust, Section 4.2.3) to that principal.
	Personas map[model.PartyID]model.PartyID

	// edgesBy caches each party's incident edge indices. FromCompiled
	// fills it; Degree and EdgesOf fall back to a linear scan on
	// hand-assembled graphs that lack it.
	edgesBy map[model.PartyID][]int
}

// Edge is one element of E: principal p uses trusted intermediary t.
type Edge struct {
	Exchange  int
	Principal model.PartyID
	Trusted   model.PartyID
}

// New derives the interaction graph from a problem, validating it
// first. It is Validate followed by FromCompiled.
func New(p *model.Problem) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("interaction: %w", err)
	}
	return FromCompiled(p), nil
}

// FromCompiled derives the interaction graph from a problem that has
// already passed Validate, skipping re-validation. The incremental path
// (core.SynthesizeIncremental) uses it: the edited problem arrives
// validated from the DSL loader, and re-validating would cost more than
// the whole graph patch. Persona lookups come from the compiled tables
// when present.
func FromCompiled(p *model.Problem) *Graph {
	p.Compile()
	g := &Graph{Problem: p, Personas: make(map[model.PartyID]model.PartyID)}
	for _, pa := range p.Parties {
		if pa.IsTrusted() {
			g.Trusted = append(g.Trusted, pa.ID)
		} else {
			g.Principals = append(g.Principals, pa.ID)
		}
	}
	g.edgesBy = make(map[model.PartyID][]int, len(p.Parties))
	for i, e := range p.Exchanges {
		g.Edges = append(g.Edges, Edge{Exchange: i, Principal: e.Principal, Trusted: e.Trusted})
		g.edgesBy[e.Principal] = append(g.edgesBy[e.Principal], i)
		if e.Trusted != e.Principal {
			g.edgesBy[e.Trusted] = append(g.edgesBy[e.Trusted], i)
		}
	}
	for _, t := range g.Trusted {
		if q, ok := p.PersonaOf(t); ok {
			g.Personas[t] = q
		}
	}
	return g
}

// Degree returns the number of interaction edges incident to the party.
func (g *Graph) Degree(id model.PartyID) int {
	if g.edgesBy != nil {
		return len(g.edgesBy[id])
	}
	n := 0
	for _, e := range g.Edges {
		if e.Principal == id || e.Trusted == id {
			n++
		}
	}
	return n
}

// Internal reports whether the party is an internal node of I (more than
// one incident edge) — exactly the nodes that get conjunction nodes in
// the sequencing graph (Section 4.1).
func (g *Graph) Internal(id model.PartyID) bool { return g.Degree(id) > 1 }

// EdgesOf returns the indices (into g.Edges) of the edges at a party.
// Read-only when served from the FromCompiled cache.
func (g *Graph) EdgesOf(id model.PartyID) []int {
	if g.edgesBy != nil {
		return g.edgesBy[id]
	}
	var out []int
	for i, e := range g.Edges {
		if e.Principal == id || e.Trusted == id {
			out = append(out, i)
		}
	}
	return out
}

// PersonaOf reports the principal playing the trusted component's role,
// if any.
func (g *Graph) PersonaOf(t model.PartyID) (model.PartyID, bool) {
	q, ok := g.Personas[t]
	return q, ok
}

// Connected reports whether the interaction graph is connected (ignoring
// isolated parties with no exchanges, which are reported separately by
// Isolated). A disconnected exchange problem is two independent
// problems; the sequencing machinery handles it, but diagnosing it helps
// specification authors.
func (g *Graph) Connected() bool {
	if len(g.Edges) == 0 {
		return true
	}
	adj := make(map[model.PartyID][]model.PartyID)
	for _, e := range g.Edges {
		adj[e.Principal] = append(adj[e.Principal], e.Trusted)
		adj[e.Trusted] = append(adj[e.Trusted], e.Principal)
	}
	start := g.Edges[0].Principal
	seen := map[model.PartyID]bool{start: true}
	queue := []model.PartyID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	for id := range adj {
		if !seen[id] {
			return false
		}
	}
	return true
}

// Isolated returns parties that participate in no exchange.
func (g *Graph) Isolated() []model.PartyID {
	var out []model.PartyID
	for _, pa := range g.Problem.Parties {
		if g.Degree(pa.ID) == 0 {
			out = append(out, pa.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DOT renders the interaction graph in the paper's visual language:
// principals as circles, trusted components as squares (personas get a
// dashed border and a "played by" label).
func (g *Graph) DOT() string {
	d := dot.New("interaction:"+g.Problem.Name, false)
	d.SetAttr("rankdir=LR")
	for _, p := range g.Principals {
		d.Node(string(p), fmt.Sprintf("shape=circle, label=%s", dot.Quote(string(p))))
	}
	for _, t := range g.Trusted {
		label := string(t)
		style := "shape=square"
		if q, ok := g.Personas[t]; ok {
			label = fmt.Sprintf("%s\n(played by %s)", t, q)
			style = "shape=square, style=dashed"
		}
		d.Node(string(t), fmt.Sprintf("%s, label=%s", style, dot.Quote(label)))
	}
	for _, e := range g.Edges {
		ex := g.Problem.Exchanges[e.Exchange]
		d.Edge(string(e.Principal), string(e.Trusted),
			fmt.Sprintf("label=%s", dot.Quote(fmt.Sprintf("gives %s", ex.Gives))))
	}
	return d.String()
}

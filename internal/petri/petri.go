package petri

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"trustseq/internal/obs"
)

// PlaceID indexes a place.
type PlaceID int

// Omega is the Karp–Miller unbounded-token marker.
const Omega = -1

// Net is an immutable place/transition net.
type Net struct {
	placeNames []string
	placeIndex map[string]PlaceID
	trans      []Transition

	// ct caches the compiled transitions (sorted flat arcs); built
	// lazily by compile, dropped by AddTransition.
	ct []ctrans
}

// Transition consumes In tokens and produces Out tokens.
type Transition struct {
	Name string
	In   map[PlaceID]int
	Out  map[PlaceID]int
}

// NewNet returns an empty net.
func NewNet() *Net {
	return &Net{placeIndex: make(map[string]PlaceID)}
}

// Place interns a named place and returns its ID.
func (n *Net) Place(name string) PlaceID {
	if id, ok := n.placeIndex[name]; ok {
		return id
	}
	id := PlaceID(len(n.placeNames))
	n.placeNames = append(n.placeNames, name)
	n.placeIndex[name] = id
	return id
}

// PlaceName returns the interned name.
func (n *Net) PlaceName(id PlaceID) string {
	if int(id) < 0 || int(id) >= len(n.placeNames) {
		return fmt.Sprintf("place(%d)", int(id))
	}
	return n.placeNames[id]
}

// Places returns the number of places.
func (n *Net) Places() int { return len(n.placeNames) }

// AddTransition registers a transition. Maps are copied.
func (n *Net) AddTransition(name string, in, out map[PlaceID]int) {
	t := Transition{Name: name, In: make(map[PlaceID]int, len(in)), Out: make(map[PlaceID]int, len(out))}
	for p, w := range in {
		if w > 0 {
			t.In[p] = w
		}
	}
	for p, w := range out {
		if w > 0 {
			t.Out[p] = w
		}
	}
	n.trans = append(n.trans, t)
	n.ct = nil // mutation invalidates the compiled arcs
}

// Transitions returns the transition count.
func (n *Net) Transitions() int { return len(n.trans) }

// TransitionName returns a transition's name.
func (n *Net) TransitionName(i int) string { return n.trans[i].Name }

// Marking is a token assignment; Omega means "arbitrarily many".
type Marking []int

// NewMarking returns the zero marking for the net.
func (n *Net) NewMarking() Marking { return make(Marking, n.Places()) }

// Clone copies the marking.
func (m Marking) Clone() Marking { return append(Marking(nil), m...) }

// Key is a canonical map key for the marking — the readable form, kept
// for debugging and rendering. Exploration hot loops use the packed
// arena (hash plus exact equality) instead, avoiding a string build per
// marking.
func (m Marking) Key() string {
	var b strings.Builder
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		if v == Omega {
			b.WriteByte('w')
		} else {
			fmt.Fprintf(&b, "%d", v)
		}
	}
	return b.String()
}

// Hash is an FNV-1a–style 64-bit hash of the marking (ω hashes as its
// sentinel value). Collisions are possible, so users must confirm with
// exact equality — markingArena does.
func (m Marking) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range m {
		h ^= uint64(v)
		h *= prime64
	}
	return h
}

// Covers reports whether m ≥ target pointwise (ω covers everything).
func (m Marking) Covers(target Marking) bool {
	for i, want := range target {
		if want <= 0 {
			continue
		}
		if m[i] != Omega && m[i] < want {
			return false
		}
	}
	return true
}

// GE reports m ≥ other pointwise.
func (m Marking) GE(other Marking) bool {
	for i := range m {
		if m[i] == Omega {
			continue
		}
		if other[i] == Omega {
			return false
		}
		if m[i] < other[i] {
			return false
		}
	}
	return true
}

// String renders non-zero places.
func (n *Net) FormatMarking(m Marking) string {
	var parts []string
	for i, v := range m {
		if v == 0 {
			continue
		}
		if v == Omega {
			parts = append(parts, n.placeNames[i]+":ω")
		} else {
			parts = append(parts, fmt.Sprintf("%s:%d", n.placeNames[i], v))
		}
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// Enabled reports whether transition ti can fire from m.
func (n *Net) Enabled(m Marking, ti int) bool {
	for p, w := range n.trans[ti].In {
		if m[p] != Omega && m[p] < w {
			return false
		}
	}
	return true
}

// Fire fires transition ti from m, returning the new marking. It panics
// when the transition is not enabled (programming error).
func (n *Net) Fire(m Marking, ti int) Marking {
	if !n.Enabled(m, ti) {
		panic(fmt.Sprintf("petri: transition %s not enabled at %s", n.trans[ti].Name, n.FormatMarking(m)))
	}
	out := m.Clone()
	for p, w := range n.trans[ti].In {
		if out[p] != Omega {
			out[p] -= w
		}
	}
	for p, w := range n.trans[ti].Out {
		if out[p] != Omega {
			out[p] += w
		}
	}
	return out
}

// ReachabilityResult reports a bounded exploration.
type ReachabilityResult struct {
	Found    bool
	Explored int
	Capped   bool // the state budget was exhausted before a verdict
}

// ReachableCover explores the exact state space (no ω-acceleration) up
// to maxStates markings, looking for one covering target.
func (n *Net) ReachableCover(initial, target Marking, maxStates int) ReachabilityResult {
	return n.ReachableCoverWith(initial, target, maxStates, nil)
}

// ReachableCoverWith is ReachableCover reusing the caller's scratch
// buffers (nil allocates fresh ones). The search runs entirely on the
// compiled arc/arena layer: markings live packed in one slab, the BFS
// queue holds arena indices, and firing writes into a single reused
// buffer — the FIFO order, verdict and Explored count are identical to
// the previous map-based loop.
func (n *Net) ReachableCoverWith(initial, target Marking, maxStates int, sc *CoverScratch) ReachabilityResult {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	if sc == nil {
		sc = &CoverScratch{}
	}
	ct := n.compile()
	places := len(initial)
	sc.arena.reset(places)
	sc.init32 = packInto(sc.init32, initial)
	sc.tgt32 = packInto(sc.tgt32, target)
	sc.fireBuf = packInto(sc.fireBuf, initial) // sized; content overwritten
	root, _ := sc.arena.add(sc.init32)
	queue := append(sc.queue[:0], root)
	res := ReachabilityResult{}
	for head := 0; head < len(queue); head++ {
		m := sc.arena.at(queue[head])
		res.Explored++
		if covers32(m, sc.tgt32) {
			res.Found = true
			break
		}
		if res.Explored >= maxStates {
			res.Capped = true
			break
		}
		for ti := range ct {
			t := &ct[ti]
			if !enabled32(m, t.in) {
				continue
			}
			fire32(sc.fireBuf, m, t)
			if ni, fresh := sc.arena.add(sc.fireBuf); fresh {
				queue = append(queue, ni)
			}
		}
	}
	sc.queue = queue
	return res
}

// coverObs carries the telemetry of one coverability exploration: a
// span over the whole search with one "petri.level" event per BFS
// level (frontier size, states explored, hash-bucket collisions). The
// zero value (nil telemetry) disables everything.
type coverObs struct {
	on   bool
	tel  *obs.Telemetry
	span obs.Span
}

func startCoverObs(n *Net, name string, budget int, tel *obs.Telemetry) coverObs {
	c := coverObs{on: tel.Enabled(), tel: tel}
	if c.on {
		c.span = tel.Trace().StartSpan(name,
			obs.Int("places", n.Places()),
			obs.Int("transitions", len(n.trans)),
			obs.Int("budget", budget))
	}
	return c
}

func (c coverObs) level(level, frontier, explored, collisions int) {
	if !c.on {
		return
	}
	c.span.Event("petri.level",
		obs.Int("level", level),
		obs.Int("frontier", frontier),
		obs.Int("explored", explored),
		obs.Int("collisions", collisions))
}

func (c coverObs) finish(res ReachabilityResult, levels, collisions int) {
	if !c.on {
		return
	}
	reg := c.tel.Reg()
	reg.Counter("petri.states").Add(int64(res.Explored))
	reg.Counter("petri.collisions").Add(int64(collisions))
	if res.Found {
		reg.Counter("petri.found").Inc()
	}
	if res.Capped {
		reg.Counter("petri.capped").Inc()
	}
	reg.Histogram("petri.levels", obs.CountBuckets()).Observe(float64(levels))
	c.span.End(
		obs.Bool("found", res.Found),
		obs.Bool("capped", res.Capped),
		obs.Int("explored", res.Explored),
		obs.Int("levels", levels),
		obs.Int("collisions", collisions))
}

// ReachableCoverObs is ReachableCover with telemetry: the FIFO order —
// and therefore the verdict and the explored count — is unchanged; the
// instrumentation only tracks where each BFS level ends so it can emit
// per-level frontier sizes and bucket-collision counts.
func (n *Net) ReachableCoverObs(initial, target Marking, maxStates int, tel *obs.Telemetry) ReachabilityResult {
	return n.ReachableCoverObsWith(initial, target, maxStates, tel, nil)
}

// ReachableCoverObsWith is ReachableCoverObs reusing the caller's
// scratch buffers (nil allocates fresh ones).
func (n *Net) ReachableCoverObsWith(initial, target Marking, maxStates int, tel *obs.Telemetry, sc *CoverScratch) ReachabilityResult {
	if !tel.Enabled() {
		// The disabled path is the uninstrumented loop, byte-for-byte:
		// the level bookkeeping below, however cheap, stays off the
		// benchmarked hot path entirely.
		return n.ReachableCoverWith(initial, target, maxStates, sc)
	}
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	if sc == nil {
		sc = &CoverScratch{}
	}
	co := startCoverObs(n, "petri.cover", maxStates, tel)
	ct := n.compile()
	sc.arena.reset(len(initial))
	sc.init32 = packInto(sc.init32, initial)
	sc.tgt32 = packInto(sc.tgt32, target)
	sc.fireBuf = packInto(sc.fireBuf, initial)
	root, _ := sc.arena.add(sc.init32)
	queue := append(sc.queue[:0], root)
	res := ReachabilityResult{}
	level, inLevel, nextLevel := 0, 1, 0
	for head := 0; head < len(queue); head++ {
		m := sc.arena.at(queue[head])
		res.Explored++
		if covers32(m, sc.tgt32) {
			res.Found = true
			sc.queue = queue
			co.finish(res, level, sc.arena.collisions)
			return res
		}
		if res.Explored >= maxStates {
			res.Capped = true
			sc.queue = queue
			co.finish(res, level, sc.arena.collisions)
			return res
		}
		for ti := range ct {
			t := &ct[ti]
			if !enabled32(m, t.in) {
				continue
			}
			fire32(sc.fireBuf, m, t)
			if ni, fresh := sc.arena.add(sc.fireBuf); fresh {
				queue = append(queue, ni)
				nextLevel++
			}
		}
		inLevel--
		if inLevel == 0 {
			co.level(level, nextLevel, res.Explored, sc.arena.collisions)
			level++
			inLevel, nextLevel = nextLevel, 0
		}
	}
	sc.queue = queue
	co.finish(res, level, sc.arena.collisions)
	return res
}

// Coverable runs the Karp–Miller coverability construction: along each
// path, a strictly dominating successor accelerates the strictly larger
// places to ω. It answers whether some reachable marking covers target.
// The node budget guards against pathological growth; Capped is set when
// it is exhausted.
func (n *Net) Coverable(initial, target Marking, maxNodes int) ReachabilityResult {
	if maxNodes <= 0 {
		maxNodes = 1 << 18
	}
	type node struct {
		m        Marking
		ancestry []Marking
	}
	res := ReachabilityResult{}
	seen := &markingArena{}
	seen.reset(len(initial))
	var pack []int32
	stack := []node{{m: initial, ancestry: nil}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pack = packInto(pack, cur.m)
		if _, fresh := seen.add(pack); !fresh {
			continue
		}
		res.Explored++
		if cur.m.Covers(target) {
			res.Found = true
			return res
		}
		if res.Explored >= maxNodes {
			res.Capped = true
			return res
		}
		for ti := range n.trans {
			if !n.Enabled(cur.m, ti) {
				continue
			}
			next := n.Fire(cur.m, ti)
			// ω-acceleration against ancestors.
			accelerated := next.Clone()
			for _, anc := range cur.ancestry {
				if accelerated.GE(anc) && !markingEqual(accelerated, anc) {
					for i := range accelerated {
						if anc[i] != Omega && accelerated[i] != Omega && accelerated[i] > anc[i] {
							accelerated[i] = Omega
						}
					}
				}
			}
			ancestry := append(append([]Marking(nil), cur.ancestry...), cur.m)
			stack = append(stack, node{m: accelerated, ancestry: ancestry})
		}
	}
	return res
}

func markingEqual(a, b Marking) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ReachableCoverParallel is ReachableCover with level-synchronous
// frontier expansion across a bounded worker pool: each BFS level is
// split into chunks expanded concurrently, then the successors are
// deduplicated serially against the seen set. The Found verdict matches
// the serial search (both exhaust the same reachable set); Explored may
// differ near the cap or the target, since a level is expanded as a
// whole. workers ≤ 1 falls back to the serial search.
func (n *Net) ReachableCoverParallel(initial, target Marking, maxStates, workers int) ReachabilityResult {
	return n.ReachableCoverParallelObs(initial, target, maxStates, workers, nil)
}

// ReachableCoverParallelObs is ReachableCoverParallel with the same
// per-level telemetry as ReachableCoverObs (the parallel search is
// already level-synchronous, so the events fall out of the loop shape).
func (n *Net) ReachableCoverParallelObs(initial, target Marking, maxStates, workers int, tel *obs.Telemetry) ReachabilityResult {
	if workers <= 1 {
		return n.ReachableCoverObs(initial, target, maxStates, tel)
	}
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	co := startCoverObs(n, "petri.cover_parallel", maxStates, tel)
	ct := n.compile()
	places := len(initial)
	arena := &markingArena{}
	arena.reset(places)
	init32 := packInto(nil, initial)
	tgt32 := packInto(nil, target)
	root, _ := arena.add(init32)
	frontier := []int32{root}
	res := ReachabilityResult{}
	level := 0
	for len(frontier) > 0 {
		// Check the whole level for coverage first, so the verdict does
		// not depend on intra-level ordering.
		for _, mi := range frontier {
			res.Explored++
			if covers32(arena.at(mi), tgt32) {
				res.Found = true
				co.finish(res, level, arena.collisions)
				return res
			}
		}
		if res.Explored >= maxStates {
			res.Capped = true
			co.finish(res, level, arena.collisions)
			return res
		}
		w := workers
		if w > len(frontier) {
			w = len(frontier)
		}
		// Workers only read the arena (the level barrier below orders
		// every write after their reads); each appends packed successor
		// markings to its own flat buffer.
		succs := make([][]int32, w)
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				var out []int32
				buf := make([]int32, places)
				for fi := wi; fi < len(frontier); fi += w {
					m := arena.at(frontier[fi])
					for ti := range ct {
						t := &ct[ti]
						if !enabled32(m, t.in) {
							continue
						}
						fire32(buf, m, t)
						out = append(out, buf...)
					}
				}
				succs[wi] = out
			}(wi)
		}
		wg.Wait()
		next := frontier[:0]
		for _, out := range succs {
			for off := 0; off < len(out); off += places {
				if ni, fresh := arena.add(out[off : off+places]); fresh {
					next = append(next, ni)
				}
			}
		}
		co.level(level, len(next), res.Explored, arena.collisions)
		level++
		frontier = next
	}
	co.finish(res, level, arena.collisions)
	return res
}

// Package petri is a place/transition Petri-net substrate with firing,
// bounded reachability, and Karp–Miller coverability. Section 7.4 of the
// paper relates exchange feasibility to subset coverability of a Petri
// net in which "consumable resources (such as money) are modeled very
// naturally in the tokens"; FromProblem performs that encoding and
// CompletedTarget gives the "exchange completed" sub-marking whose
// coverability witnesses a completing execution.
package petri

import (
	"fmt"
	"sort"
	"strings"
)

// PlaceID indexes a place.
type PlaceID int

// Omega is the Karp–Miller unbounded-token marker.
const Omega = -1

// Net is an immutable place/transition net.
type Net struct {
	placeNames []string
	placeIndex map[string]PlaceID
	trans      []Transition
}

// Transition consumes In tokens and produces Out tokens.
type Transition struct {
	Name string
	In   map[PlaceID]int
	Out  map[PlaceID]int
}

// NewNet returns an empty net.
func NewNet() *Net {
	return &Net{placeIndex: make(map[string]PlaceID)}
}

// Place interns a named place and returns its ID.
func (n *Net) Place(name string) PlaceID {
	if id, ok := n.placeIndex[name]; ok {
		return id
	}
	id := PlaceID(len(n.placeNames))
	n.placeNames = append(n.placeNames, name)
	n.placeIndex[name] = id
	return id
}

// PlaceName returns the interned name.
func (n *Net) PlaceName(id PlaceID) string {
	if int(id) < 0 || int(id) >= len(n.placeNames) {
		return fmt.Sprintf("place(%d)", int(id))
	}
	return n.placeNames[id]
}

// Places returns the number of places.
func (n *Net) Places() int { return len(n.placeNames) }

// AddTransition registers a transition. Maps are copied.
func (n *Net) AddTransition(name string, in, out map[PlaceID]int) {
	t := Transition{Name: name, In: make(map[PlaceID]int, len(in)), Out: make(map[PlaceID]int, len(out))}
	for p, w := range in {
		if w > 0 {
			t.In[p] = w
		}
	}
	for p, w := range out {
		if w > 0 {
			t.Out[p] = w
		}
	}
	n.trans = append(n.trans, t)
}

// Transitions returns the transition count.
func (n *Net) Transitions() int { return len(n.trans) }

// TransitionName returns a transition's name.
func (n *Net) TransitionName(i int) string { return n.trans[i].Name }

// Marking is a token assignment; Omega means "arbitrarily many".
type Marking []int

// NewMarking returns the zero marking for the net.
func (n *Net) NewMarking() Marking { return make(Marking, n.Places()) }

// Clone copies the marking.
func (m Marking) Clone() Marking { return append(Marking(nil), m...) }

// Key is a canonical map key for the marking.
func (m Marking) Key() string {
	var b strings.Builder
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		if v == Omega {
			b.WriteByte('w')
		} else {
			fmt.Fprintf(&b, "%d", v)
		}
	}
	return b.String()
}

// Covers reports whether m ≥ target pointwise (ω covers everything).
func (m Marking) Covers(target Marking) bool {
	for i, want := range target {
		if want <= 0 {
			continue
		}
		if m[i] != Omega && m[i] < want {
			return false
		}
	}
	return true
}

// GE reports m ≥ other pointwise.
func (m Marking) GE(other Marking) bool {
	for i := range m {
		if m[i] == Omega {
			continue
		}
		if other[i] == Omega {
			return false
		}
		if m[i] < other[i] {
			return false
		}
	}
	return true
}

// String renders non-zero places.
func (n *Net) FormatMarking(m Marking) string {
	var parts []string
	for i, v := range m {
		if v == 0 {
			continue
		}
		if v == Omega {
			parts = append(parts, n.placeNames[i]+":ω")
		} else {
			parts = append(parts, fmt.Sprintf("%s:%d", n.placeNames[i], v))
		}
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// Enabled reports whether transition ti can fire from m.
func (n *Net) Enabled(m Marking, ti int) bool {
	for p, w := range n.trans[ti].In {
		if m[p] != Omega && m[p] < w {
			return false
		}
	}
	return true
}

// Fire fires transition ti from m, returning the new marking. It panics
// when the transition is not enabled (programming error).
func (n *Net) Fire(m Marking, ti int) Marking {
	if !n.Enabled(m, ti) {
		panic(fmt.Sprintf("petri: transition %s not enabled at %s", n.trans[ti].Name, n.FormatMarking(m)))
	}
	out := m.Clone()
	for p, w := range n.trans[ti].In {
		if out[p] != Omega {
			out[p] -= w
		}
	}
	for p, w := range n.trans[ti].Out {
		if out[p] != Omega {
			out[p] += w
		}
	}
	return out
}

// ReachabilityResult reports a bounded exploration.
type ReachabilityResult struct {
	Found    bool
	Explored int
	Capped   bool // the state budget was exhausted before a verdict
}

// ReachableCover explores the exact state space (no ω-acceleration) up
// to maxStates markings, looking for one covering target.
func (n *Net) ReachableCover(initial, target Marking, maxStates int) ReachabilityResult {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	seen := map[string]bool{initial.Key(): true}
	queue := []Marking{initial}
	res := ReachabilityResult{}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		res.Explored++
		if m.Covers(target) {
			res.Found = true
			return res
		}
		if res.Explored >= maxStates {
			res.Capped = true
			return res
		}
		for ti := range n.trans {
			if !n.Enabled(m, ti) {
				continue
			}
			next := n.Fire(m, ti)
			k := next.Key()
			if !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	return res
}

// Coverable runs the Karp–Miller coverability construction: along each
// path, a strictly dominating successor accelerates the strictly larger
// places to ω. It answers whether some reachable marking covers target.
// The node budget guards against pathological growth; Capped is set when
// it is exhausted.
func (n *Net) Coverable(initial, target Marking, maxNodes int) ReachabilityResult {
	if maxNodes <= 0 {
		maxNodes = 1 << 18
	}
	type node struct {
		m        Marking
		ancestry []Marking
	}
	res := ReachabilityResult{}
	seen := map[string]bool{}
	stack := []node{{m: initial, ancestry: nil}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		key := cur.m.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		res.Explored++
		if cur.m.Covers(target) {
			res.Found = true
			return res
		}
		if res.Explored >= maxNodes {
			res.Capped = true
			return res
		}
		for ti := range n.trans {
			if !n.Enabled(cur.m, ti) {
				continue
			}
			next := n.Fire(cur.m, ti)
			// ω-acceleration against ancestors.
			accelerated := next.Clone()
			for _, anc := range cur.ancestry {
				if accelerated.GE(anc) && !markingEqual(accelerated, anc) {
					for i := range accelerated {
						if anc[i] != Omega && accelerated[i] != Omega && accelerated[i] > anc[i] {
							accelerated[i] = Omega
						}
					}
				}
			}
			ancestry := append(append([]Marking(nil), cur.ancestry...), cur.m)
			stack = append(stack, node{m: accelerated, ancestry: ancestry})
		}
	}
	return res
}

func markingEqual(a, b Marking) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

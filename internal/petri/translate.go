package petri

import (
	"fmt"

	"trustseq/internal/model"
	"trustseq/internal/obs"
)

// Encoding is the Petri-net rendering of an exchange problem, per the
// Section 7.4 sketch: money and documents are tokens; deposit
// transitions move a principal's assets into per-exchange escrow places;
// a completion transition per trusted component consumes every adjacent
// escrow and produces the promised deliveries plus one "done" token per
// exchange. Subset coverability of the all-done marking witnesses a
// completing execution (the asset-level reading of feasibility; the
// safety pruning of the search baselines is deliberately not encoded —
// that is exactly the gap Section 7.4 leaves open).
type Encoding struct {
	Net     *Net
	Problem *model.Problem
	Initial Marking
	// Done[ei] is the done-place of exchange ei.
	Done []PlaceID
}

// cashPlace and itemPlace intern the asset places for a party.
func cashPlace(n *Net, id model.PartyID) PlaceID {
	return n.Place("cash:" + string(id))
}

func itemPlace(n *Net, id model.PartyID, it model.ItemID) PlaceID {
	return n.Place(fmt.Sprintf("item:%s:%s", id, it))
}

func escrowCash(n *Net, ei int) PlaceID {
	return n.Place(fmt.Sprintf("esc-cash:%d", ei))
}

func escrowItem(n *Net, ei int, it model.ItemID) PlaceID {
	return n.Place(fmt.Sprintf("esc-item:%d:%s", ei, it))
}

// FromProblem encodes the problem. Money amounts become token counts, so
// keep prices modest when exploring exhaustively.
func FromProblem(p *model.Problem) (*Encoding, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := NewNet()
	enc := &Encoding{Net: n, Problem: p, Done: make([]PlaceID, len(p.Exchanges))}

	// Deposit transitions.
	for ei, e := range p.Exchanges {
		in := map[PlaceID]int{}
		out := map[PlaceID]int{}
		if e.Gives.Amount > 0 {
			in[cashPlace(n, e.Principal)] = int(e.Gives.Amount)
			out[escrowCash(n, ei)] = int(e.Gives.Amount)
		}
		for _, it := range e.Gives.Items {
			in[itemPlace(n, e.Principal, it)]++
			out[escrowItem(n, ei, it)]++
		}
		enc.Done[ei] = n.Place(fmt.Sprintf("done:%d", ei))
		n.AddTransition(fmt.Sprintf("deposit:%d", ei), in, out)
	}

	// Completion transitions, one per trusted component.
	for _, pa := range p.Parties {
		if !pa.IsTrusted() {
			continue
		}
		in := map[PlaceID]int{}
		out := map[PlaceID]int{}
		any := false
		for ei, e := range p.Exchanges {
			if e.Trusted != pa.ID {
				continue
			}
			any = true
			if e.Gives.Amount > 0 {
				in[escrowCash(n, ei)] += int(e.Gives.Amount)
			}
			for _, it := range e.Gives.Items {
				in[escrowItem(n, ei, it)]++
			}
			if e.Gets.Amount > 0 {
				out[cashPlace(n, e.Principal)] += int(e.Gets.Amount)
			}
			for _, it := range e.Gets.Items {
				out[itemPlace(n, e.Principal, it)]++
			}
			out[enc.Done[ei]]++
		}
		if any {
			n.AddTransition("complete:"+string(pa.ID), in, out)
		}
	}

	// Intern every holding place before sizing the initial marking.
	holdings := model.InitialHoldings(p)
	for id, h := range holdings {
		if h.Cash > 0 {
			cashPlace(n, id)
		}
		for it := range h.Items {
			itemPlace(n, id, it)
		}
	}
	enc.Initial = n.NewMarking()
	for id, h := range holdings {
		if h.Cash > 0 {
			enc.Initial[cashPlace(n, id)] = int(h.Cash)
		}
		for it, cnt := range h.Items {
			enc.Initial[itemPlace(n, id, it)] = cnt
		}
	}
	// The net is complete; compile the flat arc form here, on the single
	// construction goroutine, so every later exploration (serial or
	// parallel) starts from the cached arcs.
	n.compile()
	return enc, nil
}

// CompletedTarget is the sub-marking requiring every exchange's done
// token — the paper's "exchange completed" place set.
func (e *Encoding) CompletedTarget() Marking {
	t := e.Net.NewMarking()
	for _, p := range e.Done {
		t[p] = 1
	}
	return t
}

// Completable reports whether the all-done marking is coverable, with
// the exact bounded search (the encoding conserves tokens, so the state
// space is finite for finite endowments).
func (e *Encoding) Completable(maxStates int) ReachabilityResult {
	return e.Net.ReachableCover(e.Initial, e.CompletedTarget(), maxStates)
}

// CompletableWith is Completable reusing the caller's scratch buffers —
// the repeat-exploration path (e.g. one scratch per sweep worker).
func (e *Encoding) CompletableWith(maxStates int, sc *CoverScratch) ReachabilityResult {
	return e.Net.ReachableCoverWith(e.Initial, e.CompletedTarget(), maxStates, sc)
}

// CompletableObs is Completable with per-level BFS telemetry (see
// ReachableCoverObs). Nil telemetry makes it exactly Completable.
func (e *Encoding) CompletableObs(maxStates int, tel *obs.Telemetry) ReachabilityResult {
	return e.Net.ReachableCoverObs(e.Initial, e.CompletedTarget(), maxStates, tel)
}

// CompletableObsWith is CompletableObs reusing the caller's scratch.
func (e *Encoding) CompletableObsWith(maxStates int, tel *obs.Telemetry, sc *CoverScratch) ReachabilityResult {
	return e.Net.ReachableCoverObsWith(e.Initial, e.CompletedTarget(), maxStates, tel, sc)
}

// CompletableParallel is Completable with worker-pool frontier expansion
// (see ReachableCoverParallel). The Found verdict matches Completable.
func (e *Encoding) CompletableParallel(maxStates, workers int) ReachabilityResult {
	return e.Net.ReachableCoverParallel(e.Initial, e.CompletedTarget(), maxStates, workers)
}

// Package petri is a place/transition Petri-net substrate with firing,
// bounded reachability, and Karp–Miller coverability. Section 7.4 of the
// paper relates exchange feasibility to subset coverability of a Petri
// net in which "consumable resources (such as money) are modeled very
// naturally in the tokens"; FromProblem performs that encoding and
// CompletedTarget gives the "exchange completed" sub-marking whose
// coverability witnesses a completing execution.
//
// # Key types
//
//   - Net is the immutable structure: places, Transitions with
//     consume/produce vectors; NewNet builds one incrementally.
//   - Marking is a token count per place; firing produces fresh
//     Markings.
//   - Encoding is the problem→net translation: the Net, the initial
//     Marking, the completed-target sub-marking, and the place/party
//     correspondence used in diagnostics.
//   - CoverScratch is reusable working memory (arena, queue, seen-set)
//     for repeated coverability queries; ReachabilityResult reports the
//     bounded-exploration outcome and whether the budget was exhausted.
//
// # Concurrency and ownership
//
// A Net and an Encoding are immutable once built and safe to share
// across goroutines. All mutable exploration state lives in a
// CoverScratch, which is strictly single-owner: one goroutine, one
// scratch, reused across queries to amortize allocation (the sweep
// pipeline keeps one per worker). Budgets (PetriBudget in callers) bound
// exploration, so a query either answers within budget or reports
// truncation explicitly — it never silently spins.
package petri

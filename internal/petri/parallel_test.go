package petri

import (
	"math/rand"
	"testing"

	"trustseq/internal/gen"
	"trustseq/internal/paperex"
)

// Distinct markings must never merge in a markingArena, even when their
// 64-bit hashes collide (exercised directly with a forged collision).
func TestMarkingSetExactness(t *testing.T) {
	t.Parallel()
	s := &markingArena{}
	s.reset(3)
	if _, fresh := s.add([]int32{1, 2, 3}); !fresh {
		t.Fatal("first add of a should be new")
	}
	if _, fresh := s.add([]int32{1, 2, 3}); fresh {
		t.Fatal("equal marking b should be a duplicate")
	}
	if _, fresh := s.add([]int32{3, 2, 1}); !fresh {
		t.Fatal("distinct marking c should be new")
	}
	if s.count != 2 {
		t.Fatalf("count = %d, want 2", s.count)
	}
	// Simulate a hash collision: store x, then forge its recorded hash and
	// table slot to match y's. add(y) must see through the collision via
	// exact equality, keep both markings, and tally one collision.
	forged := &markingArena{}
	forged.reset(1)
	forged.add([]int32{7})
	y := []int32{9}
	forged.hashes[0] = hash32(y)
	for i := range forged.table {
		forged.table[i] = 0
	}
	forged.table[hash32(y)&forged.mask] = 1
	if _, fresh := forged.add(y); !fresh {
		t.Fatal("y must be added despite colliding with x's entry")
	}
	if _, fresh := forged.add(y); fresh {
		t.Fatal("second add of y must report duplicate")
	}
	if forged.count != 2 {
		t.Fatalf("forged count = %d, want 2", forged.count)
	}
	if forged.collisions != 1 {
		t.Fatalf("forged collisions = %d, want 1", forged.collisions)
	}
}

// Omega must hash differently from plain token counts that render alike.
func TestMarkingHashOmega(t *testing.T) {
	t.Parallel()
	a := Marking{Omega, 0}
	b := Marking{0, Omega}
	if markingEqual(a, b) {
		t.Fatal("markings must differ")
	}
	if hash32(packInto(nil, a)) != a.Hash() || hash32(packInto(nil, b)) != b.Hash() {
		t.Fatal("packed hash must match Marking.Hash")
	}
	s := &markingArena{}
	s.reset(2)
	if _, fresh := s.add(packInto(nil, a)); !fresh {
		t.Fatal("first omega marking must insert")
	}
	if _, fresh := s.add(packInto(nil, b)); !fresh {
		t.Fatal("second omega marking must insert")
	}
}

// The parallel frontier expansion must agree with the serial search on
// Found for every paper example and a random corpus, at several worker
// counts.
func TestReachableCoverParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	problems := []*struct {
		name string
		enc  *Encoding
	}{}
	for name, p := range paperex.All() {
		enc, err := FromProblem(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		problems = append(problems, &struct {
			name string
			enc  *Encoding
		}{name, enc})
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		p := gen.Random(rng, gen.Options{Consumers: 1, Brokers: 2, Producers: 2, MaxPrice: 12})
		enc, err := FromProblem(p)
		if err != nil {
			t.Fatalf("random %d: %v", i, err)
		}
		problems = append(problems, &struct {
			name string
			enc  *Encoding
		}{p.Name, enc})
	}
	for _, tc := range problems {
		serial := tc.enc.Completable(1 << 17)
		for _, workers := range []int{2, 4, 8} {
			par := tc.enc.CompletableParallel(1<<17, workers)
			if par.Found != serial.Found || par.Capped != serial.Capped {
				t.Errorf("%s workers=%d: parallel found=%v capped=%v, serial found=%v capped=%v",
					tc.name, workers, par.Found, par.Capped, serial.Found, serial.Capped)
			}
		}
	}
}

// workers ≤ 1 must take the serial path, explored counts included.
func TestReachableCoverParallelSerialFallback(t *testing.T) {
	t.Parallel()
	enc, err := FromProblem(paperex.Example1())
	if err != nil {
		t.Fatal(err)
	}
	a := enc.Completable(1 << 16)
	b := enc.CompletableParallel(1<<16, 1)
	if a != b {
		t.Fatalf("fallback mismatch: %+v vs %+v", a, b)
	}
}

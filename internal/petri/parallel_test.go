package petri

import (
	"math/rand"
	"testing"

	"trustseq/internal/gen"
	"trustseq/internal/paperex"
)

// Distinct markings must never merge in a markingSet, even when their
// 64-bit hashes collide (exercised directly with forged collisions).
func TestMarkingSetExactness(t *testing.T) {
	t.Parallel()
	s := newMarkingSet()
	a := Marking{1, 2, 3}
	b := Marking{1, 2, 3}
	c := Marking{3, 2, 1}
	if !s.add(a) {
		t.Fatal("first add of a should be new")
	}
	if s.add(b) {
		t.Fatal("equal marking b should be a duplicate")
	}
	if !s.add(c) {
		t.Fatal("distinct marking c should be new")
	}
	if s.size != 2 {
		t.Fatalf("size = %d, want 2", s.size)
	}
	// Simulate a hash collision: seed x into y's bucket. add(y) must see
	// through the collision via exact equality and keep both markings.
	forged := newMarkingSet()
	x := Marking{7}
	y := Marking{9}
	forged.buckets[y.Hash()] = []Marking{x}
	forged.size = 1
	if !forged.add(y) {
		t.Fatal("y must be added despite colliding with x's bucket")
	}
	if forged.add(y) {
		t.Fatal("second add of y must report duplicate")
	}
	if forged.size != 2 {
		t.Fatalf("forged size = %d, want 2", forged.size)
	}
}

// Omega must hash differently from plain token counts that render alike.
func TestMarkingHashOmega(t *testing.T) {
	t.Parallel()
	a := Marking{Omega, 0}
	b := Marking{0, Omega}
	if markingEqual(a, b) {
		t.Fatal("markings must differ")
	}
	s := newMarkingSet()
	if !s.add(a) || !s.add(b) {
		t.Fatal("both omega markings must insert")
	}
}

// The parallel frontier expansion must agree with the serial search on
// Found for every paper example and a random corpus, at several worker
// counts.
func TestReachableCoverParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	problems := []*struct {
		name string
		enc  *Encoding
	}{}
	for name, p := range paperex.All() {
		enc, err := FromProblem(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		problems = append(problems, &struct {
			name string
			enc  *Encoding
		}{name, enc})
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		p := gen.Random(rng, gen.Options{Consumers: 1, Brokers: 2, Producers: 2, MaxPrice: 12})
		enc, err := FromProblem(p)
		if err != nil {
			t.Fatalf("random %d: %v", i, err)
		}
		problems = append(problems, &struct {
			name string
			enc  *Encoding
		}{p.Name, enc})
	}
	for _, tc := range problems {
		serial := tc.enc.Completable(1 << 17)
		for _, workers := range []int{2, 4, 8} {
			par := tc.enc.CompletableParallel(1<<17, workers)
			if par.Found != serial.Found || par.Capped != serial.Capped {
				t.Errorf("%s workers=%d: parallel found=%v capped=%v, serial found=%v capped=%v",
					tc.name, workers, par.Found, par.Capped, serial.Found, serial.Capped)
			}
		}
	}
}

// workers ≤ 1 must take the serial path, explored counts included.
func TestReachableCoverParallelSerialFallback(t *testing.T) {
	t.Parallel()
	enc, err := FromProblem(paperex.Example1())
	if err != nil {
		t.Fatal(err)
	}
	a := enc.Completable(1 << 16)
	b := enc.CompletableParallel(1<<16, 1)
	if a != b {
		t.Fatalf("fallback mismatch: %+v vs %+v", a, b)
	}
}

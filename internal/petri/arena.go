package petri

import "sort"

// This file is the compiled execution layer of the net: transitions
// flattened into sorted arc arrays, markings packed into one int32 slab
// addressed by index, and an open-addressing seen-table over that slab.
// The exploration loops in petri.go run entirely against these forms —
// no map lookups and no per-marking allocations — while the public
// map-based Transition/Marking API stays the authoring surface.
//
// Token counts are stored as int32 (the paper's encodings carry money
// amounts and document counts, far below 2³¹); Omega keeps its -1
// sentinel, which sign-extends under hashing exactly like the int form.

// omega32 is Omega in packed form.
const omega32 = int32(Omega)

// arc is one compiled transition arc, sorted by place.
type arc struct {
	place int32
	w     int32
}

// ctrans is a compiled transition: its In/Out maps flattened to sorted
// arc slices sharing one backing slab per net.
type ctrans struct {
	in  []arc
	out []arc
}

// compile builds (or returns) the net's compiled transitions. It must
// run on a single goroutine before any concurrent exploration —
// every exploration entry point calls it before fanning out.
func (n *Net) compile() []ctrans {
	if n.ct != nil {
		return n.ct
	}
	total := 0
	for _, t := range n.trans {
		total += len(t.In) + len(t.Out)
	}
	// Exactly-sized slab: later appends never reallocate, so the arc
	// slices taken below stay valid.
	slab := make([]arc, 0, total)
	ct := make([]ctrans, len(n.trans))
	for i, t := range n.trans {
		start := len(slab)
		for p, w := range t.In {
			slab = append(slab, arc{place: int32(p), w: int32(w)})
		}
		in := slab[start:]
		sort.Slice(in, func(a, b int) bool { return in[a].place < in[b].place })
		start = len(slab)
		for p, w := range t.Out {
			slab = append(slab, arc{place: int32(p), w: int32(w)})
		}
		out := slab[start:]
		sort.Slice(out, func(a, b int) bool { return out[a].place < out[b].place })
		ct[i] = ctrans{in: in, out: out}
	}
	n.ct = ct
	return ct
}

// enabled32 is Net.Enabled over a packed marking.
func enabled32(m []int32, in []arc) bool {
	for _, a := range in {
		if v := m[a.place]; v != omega32 && v < a.w {
			return false
		}
	}
	return true
}

// fire32 is Net.Fire over packed markings, writing into dst (len =
// places). The caller has already checked enabled32.
func fire32(dst, m []int32, t *ctrans) {
	copy(dst, m)
	for _, a := range t.in {
		if dst[a.place] != omega32 {
			dst[a.place] -= a.w
		}
	}
	for _, a := range t.out {
		if dst[a.place] != omega32 {
			dst[a.place] += a.w
		}
	}
}

// covers32 is Marking.Covers over packed markings.
func covers32(m, target []int32) bool {
	for i, want := range target {
		if want <= 0 {
			continue
		}
		if m[i] != omega32 && m[i] < want {
			return false
		}
	}
	return true
}

// hash32 matches Marking.Hash bit-for-bit: each value sign-extends to
// uint64 (ω = -1 hashes as all-ones) under the same FNV-1a mix.
func hash32(m []int32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range m {
		h ^= uint64(int64(v))
		h *= prime64
	}
	return h
}

func eq32(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// packInto packs a Marking into int32 form, reusing dst's backing array.
func packInto(dst []int32, m Marking) []int32 {
	if cap(dst) < len(m) {
		dst = make([]int32, len(m))
	} else {
		dst = dst[:len(m)]
	}
	for i, v := range m {
		dst[i] = int32(v)
	}
	return dst
}

// markingArena is the seen-set of an exploration: every distinct
// marking lives packed in one int32 slab, addressed by insertion index,
// with an open-addressing table (1-based entries, 0 = empty) mapping
// hashes to indices. It replaces the map[uint64][]Marking bucket set —
// same exact-equality dedup, same collision tally, no per-marking
// allocations.
type markingArena struct {
	places int
	slab   []int32  // marking i occupies slab[i*places : (i+1)*places]
	hashes []uint64 // hash of marking i
	table  []int32  // open-addressing: index+1 of a marking, 0 = empty
	mask   uint64
	count  int
	// collisions counts inserted markings whose hash was already present
	// — the same "landed in a non-empty bucket" tally the bucketed set
	// kept, feeding the petri.collisions telemetry.
	collisions int
}

// reset prepares the arena for a fresh exploration over nets with the
// given place count, keeping the allocated capacity of previous runs.
func (a *markingArena) reset(places int) {
	a.places = places
	a.slab = a.slab[:0]
	a.hashes = a.hashes[:0]
	a.count = 0
	a.collisions = 0
	const initialSize = 1 << 10
	if cap(a.table) >= initialSize {
		a.table = a.table[:cap(a.table)]
		for i := range a.table {
			a.table[i] = 0
		}
	} else {
		a.table = make([]int32, initialSize)
	}
	a.mask = uint64(len(a.table) - 1)
}

// at returns marking i as a slice into the slab. The slice is valid for
// reading even across later adds: an append that grows the slab leaves
// the old backing array (and therefore the view) intact.
func (a *markingArena) at(i int32) []int32 {
	s := int(i) * a.places
	return a.slab[s : s+a.places]
}

// add inserts the packed marking (copying it into the slab), returning
// its index and whether it was absent.
func (a *markingArena) add(m []int32) (int32, bool) {
	h := hash32(m)
	i := h & a.mask
	sameHash := false
	for {
		e := a.table[i]
		if e == 0 {
			break
		}
		mi := e - 1
		if a.hashes[mi] == h {
			if eq32(a.at(mi), m) {
				return mi, false
			}
			sameHash = true
		}
		i = (i + 1) & a.mask
	}
	mi := int32(a.count)
	a.slab = append(a.slab, m...)
	a.hashes = append(a.hashes, h)
	a.table[i] = mi + 1
	a.count++
	if sameHash {
		a.collisions++
	}
	// Grow at 70% load so probe chains stay short.
	if uint64(a.count)*10 >= uint64(len(a.table))*7 {
		a.growTable()
	}
	return mi, true
}

func (a *markingArena) growTable() {
	size := len(a.table) * 2
	a.table = make([]int32, size)
	a.mask = uint64(size - 1)
	for mi := 0; mi < a.count; mi++ {
		i := a.hashes[mi] & a.mask
		for a.table[i] != 0 {
			i = (i + 1) & a.mask
		}
		a.table[i] = int32(mi) + 1
	}
}

// CoverScratch holds the reusable working state of a bounded
// coverability search: the marking arena, the BFS queue, and the packed
// initial/target/firing buffers. A zero value is ready to use; reusing
// one across calls (e.g. per sweep worker) makes repeat explorations
// allocate almost nothing. Not safe for concurrent use.
type CoverScratch struct {
	arena   markingArena
	queue   []int32
	fireBuf []int32
	init32  []int32
	tgt32   []int32
}

// NewCoverScratch returns an empty scratch.
func NewCoverScratch() *CoverScratch { return &CoverScratch{} }

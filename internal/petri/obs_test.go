package petri

import (
	"testing"

	"trustseq/internal/obs"
	"trustseq/internal/paperex"
)

// TestCoverObsMatchesPlain pins the telemetry contract for the Petri
// engines: ReachableCoverObs returns the identical result to
// ReachableCover (the level bookkeeping must not perturb FIFO order),
// the parallel variant keeps its Found verdict, and per-level events
// with frontier sizes land on the trace.
func TestCoverObsMatchesPlain(t *testing.T) {
	t.Parallel()
	for name, p := range paperex.All() {
		enc, err := FromProblem(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plain := enc.Completable(1 << 16)
		ring := obs.NewRingSink(1 << 12)
		tel := &obs.Telemetry{Tracer: obs.NewTracer(ring), Metrics: obs.NewRegistry()}
		traced := enc.CompletableObs(1<<16, tel)
		if traced != plain {
			t.Errorf("%s: traced result %+v != plain %+v", name, traced, plain)
		}
		if got := tel.Metrics.Counter("petri.states").Value(); got != int64(plain.Explored) {
			t.Errorf("%s: petri.states = %d, want %d", name, got, plain.Explored)
		}

		levels := 0
		for _, e := range ring.Events() {
			if e.Name == "petri.level" {
				levels++
			}
		}
		if plain.Explored > 1 && levels == 0 {
			t.Errorf("%s: no petri.level events for %d explored states", name, plain.Explored)
		}

		parTel := &obs.Telemetry{Tracer: obs.NewTracer(obs.NewRingSink(1 << 12)), Metrics: obs.NewRegistry()}
		par := enc.Net.ReachableCoverParallelObs(enc.Initial, enc.CompletedTarget(), 1<<16, 3, parTel)
		if par.Found != plain.Found || par.Capped != plain.Capped {
			t.Errorf("%s: parallel traced %+v disagrees with plain %+v", name, par, plain)
		}
	}
}

// TestMarkingSetCollisions sanity-checks the collision tally: inserting
// distinct markings counts a collision only when the hash was already
// present in the arena.
func TestMarkingSetCollisions(t *testing.T) {
	t.Parallel()
	s := &markingArena{}
	s.reset(2)
	a := []int32{1, 0}
	b := []int32{0, 1}
	s.add(a)
	s.add(b)
	if _, fresh := s.add(a); fresh { // duplicate: no new insert, no collision
		t.Fatal("duplicate must not insert")
	}
	if s.count != 2 {
		t.Fatalf("count = %d", s.count)
	}
	if s.collisions < 0 || s.collisions > 1 {
		t.Errorf("collisions = %d, want 0 or 1", s.collisions)
	}
}

package petri

import (
	"math/rand"
	"testing"

	"trustseq/internal/gen"
	"trustseq/internal/paperex"
	"trustseq/internal/search"
)

// A tiny producer/consumer net: p produces tokens, c consumes two at a
// time. Exercises firing and enabledness.
func TestFireAndEnabled(t *testing.T) {
	t.Parallel()
	n := NewNet()
	a, b := n.Place("a"), n.Place("b")
	n.AddTransition("move2", map[PlaceID]int{a: 2}, map[PlaceID]int{b: 1})
	m := n.NewMarking()
	m[a] = 3
	if !n.Enabled(m, 0) {
		t.Fatalf("move2 not enabled at a=3")
	}
	m2 := n.Fire(m, 0)
	if m2[a] != 1 || m2[b] != 1 {
		t.Fatalf("after fire: %s", n.FormatMarking(m2))
	}
	if n.Enabled(m2, 0) {
		t.Fatalf("move2 enabled at a=1")
	}
	// Fire on disabled transition panics.
	defer func() {
		if recover() == nil {
			t.Fatalf("Fire on disabled transition did not panic")
		}
	}()
	n.Fire(m2, 0)
}

func TestMarkingCoversAndKey(t *testing.T) {
	t.Parallel()
	m := Marking{2, 0, Omega}
	if !m.Covers(Marking{1, 0, 5}) {
		t.Errorf("covers failed with omega")
	}
	if m.Covers(Marking{3, 0, 0}) {
		t.Errorf("covers over-approximated")
	}
	if m.Key() != "2,0,w" {
		t.Errorf("Key = %q", m.Key())
	}
	if !m.GE(Marking{2, 0, 7}) {
		t.Errorf("GE with omega failed")
	}
	if (Marking{1, 0, 3}).GE(m) {
		t.Errorf("finite GE omega succeeded")
	}
}

// Karp–Miller detects unbounded growth: a generator transition gives ω,
// making any finite target coverable.
func TestCoverableUnboundedGenerator(t *testing.T) {
	t.Parallel()
	n := NewNet()
	src, sink := n.Place("src"), n.Place("sink")
	n.AddTransition("gen", map[PlaceID]int{src: 1}, map[PlaceID]int{src: 1, sink: 1})
	init := n.NewMarking()
	init[src] = 1
	target := n.NewMarking()
	target[sink] = 1_000_000
	res := n.Coverable(init, target, 10_000)
	if !res.Found {
		t.Fatalf("omega acceleration failed: %+v", res)
	}
	// The exact search cannot decide this within its budget.
	exact := n.ReachableCover(init, target, 1000)
	if exact.Found {
		t.Fatalf("exact search claims coverage it cannot reach in budget")
	}
	if !exact.Capped {
		t.Fatalf("exact search should hit its cap")
	}
}

func TestCoverableNegative(t *testing.T) {
	t.Parallel()
	n := NewNet()
	a, b := n.Place("a"), n.Place("b")
	n.AddTransition("step", map[PlaceID]int{a: 1}, map[PlaceID]int{b: 1})
	init := n.NewMarking()
	init[a] = 2
	target := n.NewMarking()
	target[b] = 3 // only 2 tokens exist
	if res := n.Coverable(init, target, 10_000); res.Found {
		t.Fatalf("covered an unreachable target")
	}
	if res := n.ReachableCover(init, target, 10_000); res.Found || res.Capped {
		t.Fatalf("exact search wrong: %+v", res)
	}
}

// E10 (Petri leg): the encoding of every paper example is completable
// exactly when the asset-mode exhaustive search finds a completing
// execution (the Section 7.4 correspondence at the asset level).
func TestEncodingMatchesAssetSearchOnExamples(t *testing.T) {
	t.Parallel()
	for name, p := range paperex.All() {
		name, p := name, p
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			enc, err := FromProblem(p)
			if err != nil {
				t.Fatalf("FromProblem = %v", err)
			}
			res := enc.Completable(1 << 20)
			if res.Capped {
				t.Fatalf("state budget exhausted")
			}
			v, err := search.Feasible(p, search.ModeAssets)
			if err != nil {
				t.Fatalf("search = %v", err)
			}
			if res.Found != v.Feasible {
				t.Errorf("petri completable=%v, asset search=%v", res.Found, v.Feasible)
			}
		})
	}
}

// The same correspondence on random problems.
func TestEncodingMatchesAssetSearchRandom(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 15; i++ {
		p := gen.Random(rng, gen.Options{Consumers: 1, Brokers: 2, Producers: 2, MaxPrice: 8})
		if len(p.Exchanges) > 8 {
			continue
		}
		enc, err := FromProblem(p)
		if err != nil {
			t.Fatalf("FromProblem = %v", err)
		}
		res := enc.Completable(1 << 21)
		if res.Capped {
			continue // budget-bound instances are inconclusive
		}
		v, err := search.Feasible(p, search.ModeAssets)
		if err != nil {
			t.Fatalf("search = %v", err)
		}
		if res.Found != v.Feasible {
			t.Errorf("instance %d: petri=%v search=%v", i, res.Found, v.Feasible)
		}
	}
}

// The poor broker's funding shortfall appears as token shortage.
func TestPoorBrokerNotCompletable(t *testing.T) {
	t.Parallel()
	enc, err := FromProblem(paperex.PoorBroker())
	if err != nil {
		t.Fatalf("FromProblem = %v", err)
	}
	if res := enc.Completable(1 << 20); res.Found {
		t.Fatalf("poor broker completable despite empty pockets")
	}
	// Funding the broker restores completability.
	p := paperex.PoorBroker()
	for i := range p.Parties {
		if p.Parties[i].ID == paperex.Broker {
			p.Parties[i].Endowment = paperex.WholesalePrice
		}
	}
	enc2, err := FromProblem(p)
	if err != nil {
		t.Fatalf("FromProblem = %v", err)
	}
	if res := enc2.Completable(1 << 20); !res.Found {
		t.Fatalf("funded broker not completable")
	}
}

func TestFromProblemRejectsInvalid(t *testing.T) {
	t.Parallel()
	p := paperex.Example1()
	p.Exchanges[0].Principal = "ghost"
	if _, err := FromProblem(p); err == nil {
		t.Fatalf("invalid problem accepted")
	}
}

func TestFormatMarkingAndNames(t *testing.T) {
	t.Parallel()
	n := NewNet()
	a := n.Place("alpha")
	if n.PlaceName(a) != "alpha" || n.PlaceName(PlaceID(99)) != "place(99)" {
		t.Errorf("PlaceName wrong")
	}
	m := n.NewMarking()
	m[a] = 2
	if got := n.FormatMarking(m); got != "{alpha:2}" {
		t.Errorf("FormatMarking = %q", got)
	}
	n.AddTransition("t", nil, map[PlaceID]int{a: 1})
	if n.Transitions() != 1 || n.TransitionName(0) != "t" {
		t.Errorf("transition accessors wrong")
	}
}

// Net encoding structure sanity for Example 1: 4 deposit transitions + 2
// completion transitions; initial tokens match the endowments.
func TestEncodingStructureExample1(t *testing.T) {
	t.Parallel()
	enc, err := FromProblem(paperex.Example1())
	if err != nil {
		t.Fatalf("FromProblem = %v", err)
	}
	if got := enc.Net.Transitions(); got != 6 {
		t.Errorf("transitions = %d, want 6", got)
	}
	cash := enc.Initial[enc.Net.Place("cash:"+string(paperex.Consumer))]
	if cash != int(paperex.RetailPrice) {
		t.Errorf("consumer tokens = %d", cash)
	}
	doc := enc.Initial[enc.Net.Place("item:"+string(paperex.Producer)+":"+string(paperex.Doc))]
	if doc != 1 {
		t.Errorf("producer document tokens = %d", doc)
	}
}

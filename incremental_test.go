package trustseq

import (
	"math/rand"
	"reflect"
	"testing"

	"trustseq/internal/core"
	"trustseq/internal/gen"
	"trustseq/internal/model"
	"trustseq/internal/paperex"
	"trustseq/internal/service"
)

// This file is the edit-fuzzer property suite for incremental analysis
// (E-incremental): for every generator family and a menu of random
// single edits, SynthesizeIncremental from a resident base plan must be
// byte-identical to a from-scratch Synthesize of the edited problem —
// verdict, removal trace, execution steps, and rendered report alike.

// editMutation applies one random edit to p in place. It reports false
// when the edit does not apply to this problem shape (e.g. removing a
// trust declaration that does not exist); the trial is then skipped.
type editMutation struct {
	name  string
	apply func(rng *rand.Rand, p *model.Problem) bool
}

func editMutations() []editMutation {
	return []editMutation{
		{"retune", func(rng *rand.Rand, p *model.Problem) bool {
			// Bump one deposit and one delivery of the same trusted by the
			// same delta: conservation holds, the graph stays bit-identical
			// unless the new amounts trip a red rule.
			type pair struct{ in, out int }
			var pairs []pair
			for i, a := range p.Exchanges {
				if a.Gives.Amount <= 0 {
					continue
				}
				for j, b := range p.Exchanges {
					if i != j && b.Trusted == a.Trusted && b.Gets.Amount > 0 {
						pairs = append(pairs, pair{i, j})
					}
				}
			}
			if len(pairs) == 0 {
				return false
			}
			pick := pairs[rng.Intn(len(pairs))]
			delta := model.Money(1 + rng.Intn(5))
			p.Exchanges[pick.in].Gives.Amount += delta
			p.Exchanges[pick.out].Gets.Amount += delta
			return true
		}},
		{"redflip", func(rng *rand.Rand, p *model.Problem) bool {
			i := rng.Intn(len(p.Exchanges))
			p.Exchanges[i].RedOverride = !p.Exchanges[i].RedOverride
			return true
		}},
		{"funds", func(rng *rand.Rand, p *model.Problem) bool {
			var principals []int
			for i, pa := range p.Parties {
				if !pa.IsTrusted() {
					principals = append(principals, i)
				}
			}
			if len(principals) == 0 {
				return false
			}
			i := principals[rng.Intn(len(principals))]
			p.Parties[i].LimitedFunds = !p.Parties[i].LimitedFunds
			if p.Parties[i].LimitedFunds {
				p.Parties[i].Endowment = model.Money(rng.Intn(50))
			}
			return true
		}},
		{"trust-add", func(rng *rand.Rand, p *model.Problem) bool {
			var principals []model.PartyID
			for _, pa := range p.Parties {
				if !pa.IsTrusted() {
					principals = append(principals, pa.ID)
				}
			}
			if len(principals) < 2 {
				return false
			}
			a := principals[rng.Intn(len(principals))]
			b := principals[rng.Intn(len(principals))]
			if a == b {
				return false
			}
			for _, d := range p.DirectTrust {
				if d.Truster == a && d.Trustee == b {
					return false
				}
			}
			p.DirectTrust = append(p.DirectTrust, model.TrustDecl{Truster: a, Trustee: b})
			return true
		}},
		{"trust-remove", func(rng *rand.Rand, p *model.Problem) bool {
			if len(p.DirectTrust) == 0 {
				return false
			}
			i := rng.Intn(len(p.DirectTrust))
			p.DirectTrust = append(p.DirectTrust[:i], p.DirectTrust[i+1:]...)
			return true
		}},
		{"indemnify", func(rng *rand.Rand, p *model.Problem) bool {
			covers := rng.Intn(len(p.Exchanges))
			ex := p.Exchanges[covers]
			// The offerer must share the collateral holder with the
			// protected principal; a peer at the same trusted qualifies, as
			// does the protected principal itself.
			by := ex.Principal
			for _, other := range p.Exchanges {
				if other.Trusted == ex.Trusted && other.Principal != ex.Principal {
					by = other.Principal
					break
				}
			}
			p.Indemnities = append(p.Indemnities, model.IndemnityOffer{
				By: by, Covers: covers, Via: ex.Trusted, Amount: model.Money(rng.Intn(20)),
			})
			return true
		}},
		{"unindemnify", func(rng *rand.Rand, p *model.Problem) bool {
			if len(p.Indemnities) == 0 {
				return false
			}
			i := rng.Intn(len(p.Indemnities))
			p.Indemnities = append(p.Indemnities[:i], p.Indemnities[i+1:]...)
			return true
		}},
		{"rename", func(_ *rand.Rand, p *model.Problem) bool {
			p.Name += "-edited"
			return true
		}},
		{"grow", func(rng *rand.Rand, p *model.Problem) bool {
			// Structural: a new consumer–producer pair through a new trusted
			// component. The incremental path must detect this and fall back.
			price := model.Money(1 + rng.Intn(30))
			p.Parties = append(p.Parties,
				model.Party{ID: "zc", Role: model.RoleConsumer},
				model.Party{ID: "zp", Role: model.RoleProducer},
				model.Party{ID: "zt", Role: model.RoleTrusted})
			p.Exchanges = append(p.Exchanges,
				model.Exchange{Principal: "zc", Trusted: "zt", Gives: model.Cash(price), Gets: model.Goods("zd")},
				model.Exchange{Principal: "zp", Trusted: "zt", Gives: model.Goods("zd"), Gets: model.Cash(price)})
			return true
		}},
	}
}

func fuzzFamilies() map[string]func(rng *rand.Rand) *model.Problem {
	return map[string]func(rng *rand.Rand) *model.Problem{
		"pair":     func(rng *rand.Rand) *model.Problem { return gen.Pair(model.Money(2 + rng.Intn(98))) },
		"chain4":   func(rng *rand.Rand) *model.Problem { return gen.Chain(4, model.Money(20+rng.Intn(80))) },
		"chain8":   func(rng *rand.Rand) *model.Problem { return gen.Chain(8, model.Money(40+rng.Intn(80))) },
		"star":     func(*rand.Rand) *model.Problem { return gen.Star([]model.Money{10, 20, 30}) },
		"parallel": func(*rand.Rand) *model.Problem { return gen.Parallel(3, 40) },
		"example1": func(*rand.Rand) *model.Problem { return paperex.Example1() },
		"example2": func(*rand.Rand) *model.Problem { return paperex.Example2() },
		"figure7":  func(*rand.Rand) *model.Problem { return paperex.Figure7() },
		"random": func(rng *rand.Rand) *model.Problem {
			return gen.Random(rng, gen.Options{
				Consumers: 1 + rng.Intn(2), Brokers: 2, Producers: 2, DirectTrustProb: 0.3,
			})
		},
	}
}

// requirePlansIdentical compares everything a caller can observe from a
// plan, including the service's text rendering.
func requirePlansIdentical(t *testing.T, full, inc *core.Plan) {
	t.Helper()
	if full.Feasible != inc.Feasible {
		t.Fatalf("feasible: full=%v incremental=%v", full.Feasible, inc.Feasible)
	}
	if !reflect.DeepEqual(full.Reduction.Removals, inc.Reduction.Removals) {
		t.Fatalf("removal traces differ:\nfull %v\ninc  %v", full.Reduction.Removals, inc.Reduction.Removals)
	}
	if !reflect.DeepEqual(full.Reduction.RemovedSorted(), inc.Reduction.RemovedSorted()) {
		t.Fatalf("removed edge sets differ")
	}
	if got, want := inc.Reduction.String(), full.Reduction.String(); got != want {
		t.Fatalf("reduction renderings differ:\nfull %q\ninc  %q", want, got)
	}
	if !reflect.DeepEqual(full.Steps, inc.Steps) {
		t.Fatalf("execution steps differ:\nfull %v\ninc  %v", full.Steps, inc.Steps)
	}
	opts := service.RenderOptions{Trace: true, Indemnify: true, Verify: true}
	fullText, err := service.RenderText(full, opts)
	if err != nil {
		t.Fatalf("RenderText(full) = %v", err)
	}
	incText, err := service.RenderText(inc, opts)
	if err != nil {
		t.Fatalf("RenderText(incremental) = %v", err)
	}
	if fullText != incText {
		t.Fatalf("rendered reports differ:\nfull:\n%s\nincremental:\n%s", fullText, incText)
	}
}

// TestIncrementalMatchesFromScratch is the property gate: random single
// edits across every family, incremental == from-scratch, all three
// outcomes exercised.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(61))
	mutations := editMutations()
	seenOutcome := map[string]int{}
	trials, applied := 0, 0
	for name, make := range fuzzFamilies() {
		for trial := 0; trial < 30; trial++ {
			trials++
			baseP := make(rng)
			basePlan, err := core.Synthesize(baseP)
			if err != nil {
				t.Fatalf("%s: base Synthesize = %v", name, err)
			}
			m := mutations[rng.Intn(len(mutations))]
			edited := baseP.Clone()
			if !m.apply(rng, edited) {
				continue
			}
			if err := edited.Validate(); err != nil {
				// The mutation produced an invalid problem (e.g. an
				// indemnity whose offerer lacks the required adjacency);
				// such inputs never reach the analysis pipeline.
				continue
			}
			applied++
			fullPlan, fullErr := core.Synthesize(edited.Clone())
			incPlan, info, incErr := core.SynthesizeIncremental(basePlan, edited)
			if (fullErr == nil) != (incErr == nil) {
				t.Fatalf("%s/%s: error mismatch: full=%v incremental=%v", name, m.name, fullErr, incErr)
			}
			if fullErr != nil {
				continue
			}
			seenOutcome[info.Outcome.String()]++
			if m.name == "grow" && info.Outcome != core.IncrementalFull {
				t.Fatalf("%s: structural grow served as %v", name, info.Outcome)
			}
			requirePlansIdentical(t, fullPlan, incPlan)
		}
	}
	if applied < trials/2 {
		t.Fatalf("only %d/%d trials applied a mutation; fuzzer coverage collapsed", applied, trials)
	}
	for _, want := range []string{"reused", "rereduced", "full"} {
		if seenOutcome[want] == 0 {
			t.Errorf("outcome %q never observed (distribution %v)", want, seenOutcome)
		}
	}
	t.Logf("trials=%d applied=%d outcomes=%v", trials, applied, seenOutcome)
}

// TestIncrementalChain drives a base plan through a sequence of edits,
// rebasing on each incremental result — the service's steady-state use,
// where each response becomes the next request's base.
func TestIncrementalChain(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	mutations := editMutations()
	base := paperex.Figure7()
	basePlan, err := core.Synthesize(base)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		m := mutations[rng.Intn(len(mutations))]
		edited := basePlan.Problem.Clone()
		if !m.apply(rng, edited) {
			continue
		}
		if err := edited.Validate(); err != nil {
			continue
		}
		fullPlan, fullErr := core.Synthesize(edited.Clone())
		incPlan, _, incErr := core.SynthesizeIncremental(basePlan, edited)
		if (fullErr == nil) != (incErr == nil) {
			t.Fatalf("step %d (%s): error mismatch: full=%v incremental=%v", step, m.name, fullErr, incErr)
		}
		if fullErr != nil {
			continue
		}
		requirePlansIdentical(t, fullPlan, incPlan)
		basePlan = incPlan
	}
}

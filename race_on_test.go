//go:build race

package trustseq

// raceEnabled reports whether this test binary was built with the race
// detector; exact allocation-count gates skip themselves when it is on.
const raceEnabled = true
